"""Nested span tracing for injection campaigns.

A campaign run is a tree of work: ``study → campaign → package → component
→ injection``.  Each :class:`Span` is stamped with **both** clocks the
simulator lives on -- the device's virtual millisecond clock (what the
experiment "experienced") and wall-clock ``time.perf_counter`` (what the
host actually spent) -- so a trace answers both "where did the virtual
hours go" and "where does the simulation burn host CPU".

Finished spans land in a bounded ring buffer: a paper-scale run makes
millions of injection spans, and keeping the newest window (plus a dropped
count) is the same discipline the logcat ring buffer applies to records.

Two mechanisms keep the tracer off the hot path's back:

* **Deterministic 1-in-N sampling.**  With ``sample_every=N > 1`` the
  tracer retains every Nth occurrence of each span *name*, with the phase
  offset derived from ``(sample_seed, name)`` -- so a fixed seed reproduces
  the exact same sampled trace, and ``sampled_out`` accounts for every span
  that was opened but not retained (``retained + dropped + sampled_out`` is
  the total).  Sampling counters reset at farm-shard boundaries
  (:meth:`Tracer.begin_shard`), which is what keeps the merged trace
  byte-identical at any worker count.  ``sample_every=1`` (the default)
  skips the accounting entirely and retains everything.
* **Leaf-span fast path.**  :meth:`Tracer.record_leaf` records a
  high-frequency childless span (the fuzzer's per-injection span) in a
  single call, without the context-manager machinery or the open-span
  stack.  Leaf records live in the ring as compact flat tuples and are
  inflated into :class:`Span` objects only when the ring is read: a full
  ring of tuples is a fraction of the cache footprint of a full ring of
  span+dict objects, and the eviction path is the deque's own ``maxlen``
  drop -- no per-record object churn at all.
"""

from __future__ import annotations

import contextlib
import itertools
import time
import zlib
from collections import deque
from typing import Deque, Dict, Iterator, List, Optional

#: Default finished-span ring capacity.
DEFAULT_SPAN_CAPACITY = 8192


class Span:
    """One timed unit of campaign work."""

    __slots__ = (
        "span_id",
        "parent_id",
        "name",
        "attributes",
        "start_wall_s",
        "end_wall_s",
        "start_virtual_ms",
        "end_virtual_ms",
    )

    def __init__(
        self,
        span_id: int,
        parent_id: Optional[int],
        name: str,
        attributes: Dict[str, object],
        start_wall_s: float,
        start_virtual_ms: Optional[float],
    ) -> None:
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.attributes = attributes
        self.start_wall_s = start_wall_s
        self.end_wall_s: Optional[float] = None
        self.start_virtual_ms = start_virtual_ms
        self.end_virtual_ms: Optional[float] = None

    def set_attribute(self, key: str, value: object) -> None:
        self.attributes[key] = value

    @property
    def wall_duration_s(self) -> Optional[float]:
        if self.end_wall_s is None:
            return None
        return self.end_wall_s - self.start_wall_s

    @property
    def virtual_duration_ms(self) -> Optional[float]:
        if self.end_virtual_ms is None or self.start_virtual_ms is None:
            return None
        return self.end_virtual_ms - self.start_virtual_ms

    def to_dict(self) -> Dict[str, object]:
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "attributes": dict(self.attributes),
            "start_wall_s": self.start_wall_s,
            "end_wall_s": self.end_wall_s,
            "start_virtual_ms": self.start_virtual_ms,
            "end_virtual_ms": self.end_virtual_ms,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Span {self.name} id={self.span_id} parent={self.parent_id}>"


#: Compact leaf-ring entry layout (see :meth:`Tracer.record_leaf`):
#: ``(span_id, parent_id, name, attributes_or_keys, start_wall_s,
#: end_wall_s, start_virtual_ms, end_virtual_ms, *values)``.  Slot 3 is
#: either the attribute dict itself or a shared tuple of attribute keys
#: whose values trail the fixed fields -- the latter is what the fuzzer's
#: inline client writes, so one flat tuple is the whole record.
def _materialize(entry: tuple) -> Span:
    """Inflate a compact leaf-ring entry into a full :class:`Span`."""
    attrs = entry[3]
    if type(attrs) is not dict:
        attrs = dict(zip(attrs, entry[8:]))
    span = Span(entry[0], entry[1], entry[2], attrs, entry[4], entry[6])
    span.end_wall_s = entry[5]
    span.end_virtual_ms = entry[7]
    return span


class Tracer:
    """Produces nested spans and retains the newest *capacity* of them."""

    def __init__(
        self,
        capacity: int = DEFAULT_SPAN_CAPACITY,
        clock=None,
        sample_every: int = 1,
        sample_seed: int = 0,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"span capacity must be >= 1, got {capacity}")
        if sample_every < 1:
            raise ValueError(f"sample_every must be >= 1, got {sample_every}")
        #: Finished spans, oldest first.  Nested spans (the context-manager
        #: path) land as :class:`Span` objects; leaf records land as compact
        #: flat tuples (see :func:`_materialize`) and are only inflated on
        #: read -- the ring's cache footprint, not just its allocation rate,
        #: is what the hot path pays for.
        self._finished: Deque[object] = deque(maxlen=capacity)
        self._stack: List[Span] = []
        self._ids = itertools.count(1)
        self._dropped = 0
        self._clock = clock
        self.sample_every = int(sample_every)
        self.sample_seed = int(sample_seed)
        self._sampled_out = 0
        #: Per-name occurrence counters since the last shard boundary.
        self._sample_counts: Dict[str, int] = {}
        #: Per-name phase offsets, derived from ``(sample_seed, name)``.
        self._sample_offsets: Dict[str, int] = {}

    enabled = True

    def set_clock(self, clock) -> None:
        """Attach the device clock used to stamp virtual time."""
        self._clock = clock

    def _virtual_now(self, clock) -> Optional[float]:
        active = clock if clock is not None else self._clock
        return active.now_ms() if active is not None else None

    # -- sampling --------------------------------------------------------------
    def _sample(self, name: str) -> bool:
        """Account one span open; True when this occurrence is retained."""
        every = self.sample_every
        if every == 1:
            return True
        n = self._sample_counts.get(name, 0)
        self._sample_counts[name] = n + 1
        offset = self._sample_offsets.get(name)
        if offset is None:
            offset = zlib.crc32(f"{self.sample_seed}:{name}".encode("utf-8")) % every
            self._sample_offsets[name] = offset
        if n % every == offset:
            return True
        self._sampled_out += 1
        return False

    def begin_shard(self) -> None:
        """Reset the sampling phase at a farm-shard boundary.

        Every shard samples from a fresh count, whether it runs in-process
        against the live tracer or on a worker-local one -- the invariant
        that makes sampled traces merge identically at any worker count.
        """
        self._sample_counts.clear()

    @contextlib.contextmanager
    def span(self, name: str, clock=None, **attributes: object) -> Iterator[Span]:
        """Open a span; nests under the innermost open span on this tracer.

        *clock* overrides the tracer's default clock for virtual-time
        stamping (the fuzzer passes the device clock of the device it is
        injecting into).  A sampled-out span yields an inert stand-in and
        is transparent to nesting: its children link to the nearest
        retained ancestor, and it consumes no span id.
        """
        if not self._sample(name):
            yield _NOOP_SPAN
            return
        parent_id = self._stack[-1].span_id if self._stack else None
        span = Span(
            span_id=next(self._ids),
            parent_id=parent_id,
            name=name,
            attributes=dict(attributes),
            start_wall_s=time.perf_counter(),
            start_virtual_ms=self._virtual_now(clock),
        )
        self._stack.append(span)
        try:
            yield span
        finally:
            self._stack.pop()
            span.end_wall_s = time.perf_counter()
            span.end_virtual_ms = self._virtual_now(clock)
            if len(self._finished) == self._finished.maxlen:
                self._dropped += 1
            self._finished.append(span)

    # -- leaf fast path --------------------------------------------------------
    def record_leaf(
        self,
        name: str,
        attributes: Dict[str, object],
        start_wall_s: float,
        end_wall_s: float,
        start_virtual_ms: Optional[float],
        end_virtual_ms: Optional[float],
    ) -> None:
        """Record one finished high-frequency *childless* span.

        The caller reads both clocks itself (hoisting the bound methods out
        of its loop) and hands the four stamps over, so the whole record is
        one call.  Sampling is decided here: a sampled-out occurrence is
        accounted in :attr:`sampled_out` and consumes no span id.  The span
        is never pushed on the open-span stack -- nothing may nest under it.

        The record is stored as one flat tuple (the tracer owns
        *attributes* from this point on) and inflated into a :class:`Span`
        only when :meth:`spans` is read -- a full ring of tuples is several
        times smaller than a full ring of span+dict objects, which keeps
        the hot path's cache working set down.
        """
        if self.sample_every != 1 and not self._sample(name):
            return
        stack = self._stack
        finished = self._finished
        if len(finished) == finished.maxlen:
            self._dropped += 1
        finished.append(
            (
                next(self._ids),
                stack[-1].span_id if stack else None,
                name,
                attributes,
                start_wall_s,
                end_wall_s,
                start_virtual_ms,
                end_virtual_ms,
            )
        )

    def absorb(self, spans: List[Span], dropped: int = 0, sampled_out: int = 0) -> None:
        """Append finished spans from another tracer (a farm shard's).

        Span ids are re-issued from this tracer's sequence so merged traces
        stay unique; parent links are remapped within the absorbed batch and
        severed (→ root) when the parent fell outside it -- the same thing
        the ring buffer does to a span whose parent was evicted.  *dropped*
        and *sampled_out* carry the source tracer's own accounting forward.
        """
        id_map: Dict[int, int] = {}
        for span in spans:
            new_id = next(self._ids)
            id_map[span.span_id] = new_id
            span.span_id = new_id
            if span.parent_id is not None:
                span.parent_id = id_map.get(span.parent_id)
            if len(self._finished) == self._finished.maxlen:
                self._dropped += 1
            self._finished.append(span)
        self._dropped += dropped
        self._sampled_out += sampled_out

    # -- reads -----------------------------------------------------------------
    def spans(self) -> List[Span]:
        """Finished spans, oldest first (within the retained window).

        Compact leaf-ring entries are inflated here, so every element is a
        real :class:`Span` regardless of which path recorded it.
        """
        return [
            s if type(s) is not tuple else _materialize(s) for s in self._finished
        ]

    @property
    def dropped(self) -> int:
        """Finished spans evicted by the ring buffer."""
        return self._dropped

    @property
    def sampled_out(self) -> int:
        """Spans opened but not retained by 1-in-N sampling."""
        return self._sampled_out

    @property
    def open_depth(self) -> int:
        return len(self._stack)

    def __len__(self) -> int:
        return len(self._finished)


class _NoopSpan:
    """Shared inert span handed out by the disabled tracer."""

    __slots__ = ()

    def set_attribute(self, key: str, value: object) -> None:
        pass


_NOOP_SPAN = _NoopSpan()


class NoopTracer:
    """Disabled twin of :class:`Tracer`."""

    enabled = False
    dropped = 0
    open_depth = 0
    sampled_out = 0
    sample_every = 1
    sample_seed = 0

    def set_clock(self, clock) -> None:
        pass

    def begin_shard(self) -> None:
        pass

    @contextlib.contextmanager
    def span(self, name: str, clock=None, **attributes: object):
        yield _NOOP_SPAN

    def record_leaf(
        self,
        name: str,
        attributes: Dict[str, object],
        start_wall_s: float,
        end_wall_s: float,
        start_virtual_ms: Optional[float],
        end_virtual_ms: Optional[float],
    ) -> None:
        pass

    def spans(self) -> List[Span]:
        return []

    def __len__(self) -> int:
        return 0


NOOP_TRACER = NoopTracer()
