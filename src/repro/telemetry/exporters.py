"""Exposition: Prometheus text, JSONL traces, summary table, profile.

Four consumers, four formats:

* ``render_prometheus`` -- the `text exposition format
  <https://prometheus.io/docs/instrumenting/exposition_formats/>`_, for
  scraping or diffing campaign runs;
* ``spans_to_jsonl`` -- one finished span per line, newest window of the
  tracer's ring buffer, for offline trace analysis;
* ``render_summary`` -- the human-readable table behind
  ``adb shell dumpsys telemetry`` (plus the tracer's sampling account and
  the ``SELF-PROFILE`` section when those features are armed);
* ``render_collapsed`` -- the self-profiler as flamegraph-ready
  collapsed stacks (``phase;subphase <microseconds>``).

``export_snapshot`` writes them next to each other, which is what the
runner's ``--telemetry DIR`` flag calls (``profile.collapsed`` appears
only under ``--profile``, so default exports stay byte-stable).
"""

from __future__ import annotations

import json
import math
import os
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.telemetry.metrics import (
    CRASHES,
    FLEET_LANE_OCCUPANCY,
    FLEET_PAIRS_ACTIVE,
    FLEET_PAIRS_FINISHED,
    INTENTS_SENT,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.telemetry.trace import Tracer

if TYPE_CHECKING:  # pragma: no cover - typing-only import
    from repro.telemetry import Telemetry
    from repro.telemetry.profiler import PhaseProfiler


def _escape_label_value(value: str) -> str:
    return value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")


def _render_labels(labels: Dict[str, str], extra: Optional[Dict[str, str]] = None) -> str:
    merged = {**labels, **extra} if extra else dict(labels)
    if not merged:
        return ""
    body = ",".join(
        f'{name}="{_escape_label_value(str(value))}"' for name, value in merged.items()
    )
    return "{" + body + "}"


def _format_value(value: float) -> str:
    """One sample value as Prometheus-conformant text.

    Non-finite values use the spec's spellings (``+Inf``/``-Inf``/``NaN``
    -- ``repr`` would emit Python's ``inf``/``nan``, which scrapers
    reject), integral values drop the trailing ``.0``, and everything else
    uses Python's shortest round-trip float text, which Go's float parser
    (the format's reference reader) accepts.
    """
    value = float(value)
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):
        return "NaN"
    as_int = int(value)
    return str(as_int) if value == as_int else str(value)


def render_prometheus(registry: MetricsRegistry) -> str:
    """The registry as Prometheus text exposition."""
    lines: List[str] = []
    for metric in registry.collect():
        if metric.help:
            lines.append(f"# HELP {metric.name} {metric.help}")
        lines.append(f"# TYPE {metric.name} {metric.kind}")
        if isinstance(metric, Histogram):
            for labels, child in metric.samples():
                cumulative = child.cumulative_counts()
                for bound, count in zip(child.buckets, cumulative):
                    le = _render_labels(labels, {"le": _format_value(bound)})
                    lines.append(f"{metric.name}_bucket{le} {count}")
                inf = _render_labels(labels, {"le": "+Inf"})
                lines.append(f"{metric.name}_bucket{inf} {child.count}")
                lines.append(
                    f"{metric.name}_sum{_render_labels(labels)} {_format_value(child.sum)}"
                )
                lines.append(f"{metric.name}_count{_render_labels(labels)} {child.count}")
        elif isinstance(metric, (Counter, Gauge)):
            for labels, child in metric.samples():
                lines.append(
                    f"{metric.name}{_render_labels(labels)} {_format_value(child.value)}"
                )
    return "\n".join(lines) + ("\n" if lines else "")


def spans_to_jsonl(tracer: Tracer) -> str:
    """Finished spans, one JSON object per line (oldest retained first)."""
    return "\n".join(json.dumps(span.to_dict(), sort_keys=True) for span in tracer.spans())


def parse_jsonl_spans(text: str) -> List[Dict[str, object]]:
    """Inverse of :func:`spans_to_jsonl` (used by tests and trace tooling)."""
    return [json.loads(line) for line in text.splitlines() if line.strip()]


def _fleet_section(registry: MetricsRegistry) -> List[str]:
    """The FLEET block of the summary, present only for fleet runs.

    Gated on the fleet pair counter existing in the registry: only
    :func:`repro.fleet.study.run_fleet_study` registers it, so every
    non-fleet export stays byte-identical to releases that predate the
    fleet kernel.
    """
    metrics = {metric.name: metric for metric in registry.collect()}
    finished = metrics.get(FLEET_PAIRS_FINISHED)
    if finished is None:
        return []
    lines = ["", "FLEET"]
    active = metrics.get(FLEET_PAIRS_ACTIVE)
    active_now = (
        sum(child.value for _, child in active.samples()) if active is not None else 0
    )
    lines.append(
        f"pairs: {int(finished.total())} finished, {int(active_now)} active"
    )
    occupancy = metrics.get(FLEET_LANE_OCCUPANCY)
    if occupancy is not None:
        cells = [
            f"{labels.get('lane', '?')}={int(child.value)}"
            for labels, child in occupancy.samples()
        ]
        if cells:
            lines.append(f"lane occupancy (peak pairs): {' '.join(cells)}")
    crashes = metrics.get(CRASHES)
    sent = metrics.get(INTENTS_SENT)
    if crashes is not None or sent is not None:
        crash_by = (
            {labels.get("cohort", "?"): child.value for labels, child in crashes.samples()}
            if crashes is not None
            else {}
        )
        sent_by = (
            {labels.get("cohort", "?"): child.value for labels, child in sent.samples()}
            if sent is not None
            else {}
        )
        lines.append(f"{'COHORT':<12} {'INTENTS':>10} {'CRASHES':>9}")
        for cohort in sorted(set(crash_by) | set(sent_by)):
            lines.append(
                f"{cohort:<12} {int(sent_by.get(cohort, 0)):>10} "
                f"{int(crash_by.get(cohort, 0)):>9}"
            )
    return lines


def render_summary(telemetry: "Telemetry") -> str:
    """The ``dumpsys telemetry`` table: every series, then tracer health."""
    registry = telemetry.metrics
    lines = ["TELEMETRY (dumpsys-style snapshot)", ""]
    lines.append(f"{'METRIC':<44} {'KIND':<10} {'SERIES':>6} {'VALUE':>14}")
    for metric in registry.collect():
        if isinstance(metric, Histogram):
            series = sum(1 for _ in metric.samples())
            value = f"n={metric.total_count()}"
        elif isinstance(metric, Counter):
            series = sum(1 for _ in metric.samples())
            value = _format_value(metric.total())
        else:
            samples = list(metric.samples())
            series = len(samples)
            value = _format_value(sum(child.value for _, child in samples))
        lines.append(f"{metric.name:<44} {metric.kind:<10} {series:>6} {value:>14}")
    if len(registry) == 0:
        lines.append("(no series recorded yet)")
    tracer = telemetry.tracer
    lines.append("")
    lines.append(
        f"spans: {len(tracer)} retained, {tracer.dropped} dropped,"
        f" {tracer.open_depth} open"
    )
    # Gated on sampling being armed: the default summary must stay
    # byte-identical whether or not this release knows about sampling.
    if getattr(tracer, "sample_every", 1) > 1:
        lines.append(
            f"sampling: 1-in-{tracer.sample_every}"
            f" (seed={tracer.sample_seed}), {tracer.sampled_out} sampled out"
        )
    heartbeat = telemetry.progress.last_snapshot
    if heartbeat is not None:
        lines.append(heartbeat.render())
    lines.extend(_fleet_section(registry))
    prof = telemetry.profiler
    if prof.enabled:
        lines.append("")
        lines.append("SELF-PROFILE (wall self-time per phase path)")
        rows = prof.paths()
        if not rows:
            lines.append("(no phases recorded)")
        else:
            total = prof.total_seconds() or 1.0
            lines.append(f"{'PHASE':<44} {'SELF':>10} {'%':>6} {'ENTRIES':>9}")
            for path, self_s, entries in rows:
                name = ";".join(path)
                lines.append(
                    f"{name:<44} {self_s:>9.3f}s {100.0 * self_s / total:>5.1f}% {entries:>9}"
                )
    return "\n".join(lines)


def render_collapsed(profiler: "PhaseProfiler") -> str:
    """The profiler as collapsed stacks: ``a;b <self-microseconds>`` lines.

    Microsecond integers rather than float seconds because flamegraph.pl
    sums sample counts -- integral weights collapse cleanly.
    """
    return "\n".join(
        f"{';'.join(path)} {int(round(self_s * 1e6))}"
        for path, self_s, _ in profiler.paths()
    )


def export_snapshot(directory: str, telemetry: "Telemetry") -> Dict[str, str]:
    """Write metrics.prom, trace.jsonl and summary.txt under *directory*.

    With ``--profile`` armed, a flamegraph-ready ``profile.collapsed``
    rides along.  Returns ``{artifact name: path written}``.
    """
    os.makedirs(directory, exist_ok=True)
    artifacts = {
        "metrics.prom": render_prometheus(telemetry.metrics),
        "trace.jsonl": spans_to_jsonl(telemetry.tracer),
        "summary.txt": render_summary(telemetry),
    }
    if telemetry.profiler.enabled:
        artifacts["profile.collapsed"] = render_collapsed(telemetry.profiler)
    written: Dict[str, str] = {}
    for name, content in artifacts.items():
        path = os.path.join(directory, name)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(content if content.endswith("\n") or not content else content + "\n")
        written[name] = path
    return written
