"""The fast recording core: pre-resolved, batched metric handles.

The registry in :mod:`repro.telemetry.metrics` is built for correctness and
exposition, not for the injection hot path: recording one sample through it
costs a name lookup, a label-set validation, a label-tuple build, and a
child lookup -- repeated a few hundred thousand times per second once the
fuzzer, the activity manager, and logcat are all instrumented, that is how
telemetry-on halved throughput.

This module turns the per-sample cost into an attribute add:

* A **site** (:class:`CounterSite` / :class:`GaugeSite` /
  :class:`HistogramSite`) is declared once, at module scope, next to the
  code it instruments.  It memoises the resolved metric family *per
  registry identity*, so a site survives telemetry sessions, farm shard
  handles, and forked workers without ever leaking samples across them.
* ``site.bind(registry, labelvalues)`` resolves one label tuple into a
  **bound handle** -- a ``__slots__`` accumulator wired to the registry
  child.  Label values are interned so the per-site cache is a pointer-hash
  dict hit.  Binding is the cold half; sites do it once per label tuple.
* The handle accumulates locally (``pending`` for counters, a local counts
  array for histograms) and **flushes in batches** into the registry.
  Flushing is automatic: every registry *read* (``get`` / ``collect`` --
  and therefore every exporter, the heartbeat, ``dumpsys telemetry``, and
  the farm merge) drains pending state first, so readers can never observe
  a stale registry.

Histograms precompute a bucket index table (:func:`bucket_index_table`):
for the integral-millisecond values the simulator's clocks produce, finding
the bucket is a list index instead of a linear scan.
"""

from __future__ import annotations

import sys
from bisect import bisect_left
from typing import Dict, Optional, Sequence, Tuple

#: Largest integral value covered by a precomputed index table; values past
#: the last finite bucket (or fractional ones) fall back to bisection.
MAX_TABLE_SIZE = 65536

_index_tables: Dict[Tuple[float, ...], "BucketIndexTable"] = {}


class BucketIndexTable:
    """Precomputed value -> bucket-index mapping for one bucket layout.

    ``index(v)`` returns the index of the first bucket with ``v <= bound``,
    or ``len(bounds)`` when *v* falls past the last bucket.  Integral values
    within the table range resolve with a single list index.
    """

    __slots__ = ("bounds", "_table", "_limit")

    def __init__(self, bounds: Sequence[float]) -> None:
        self.bounds = tuple(bounds)
        self._limit = min(int(self.bounds[-1]), MAX_TABLE_SIZE) if self.bounds else -1
        self._table = [bisect_left(self.bounds, k) for k in range(self._limit + 1)]

    def index(self, value: float) -> int:
        if 0 <= value <= self._limit:
            as_int = int(value)
            if as_int == value:
                return self._table[as_int]
        return bisect_left(self.bounds, value)


def bucket_index_table(bounds: Sequence[float]) -> BucketIndexTable:
    """The shared index table for *bounds* (one per distinct layout)."""
    key = tuple(bounds)
    table = _index_tables.get(key)
    if table is None:
        table = BucketIndexTable(key)
        _index_tables[key] = table
    return table


class BoundCounter:
    """A counter series resolved to its child; increments batch locally."""

    __slots__ = ("child", "pending")

    def __init__(self, child) -> None:
        self.child = child
        self.pending = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.pending += amount

    def flush(self) -> None:
        if self.pending:
            self.child.value += self.pending
            self.pending = 0.0


class BoundGauge:
    """A gauge series resolved to its child; the newest level wins."""

    __slots__ = ("child", "value", "dirty")

    def __init__(self, child) -> None:
        self.child = child
        self.value = 0.0
        self.dirty = False

    def set(self, value: float) -> None:
        self.value = value
        self.dirty = True

    def flush(self) -> None:
        if self.dirty:
            self.child.value = float(self.value)
            self.dirty = False


class BoundHistogram:
    """A histogram series with a local counts array and an index table."""

    __slots__ = ("child", "counts", "sum", "count", "_table")

    def __init__(self, child) -> None:
        self.child = child
        self.counts = [0] * len(child.buckets)
        self.sum = 0.0
        self.count = 0
        self._table = bucket_index_table(child.buckets)

    def observe(self, value: float) -> None:
        i = self._table.index(value)
        if i < len(self.counts):
            self.counts[i] += 1
        self.sum += value
        self.count += 1

    def flush(self) -> None:
        if self.count:
            child = self.child
            for i, c in enumerate(self.counts):
                if c:
                    child.counts[i] += c
                    self.counts[i] = 0
            child.sum += self.sum
            child.count += self.count
            self.sum = 0.0
            self.count = 0


class _Site:
    """Shared site machinery: family + bound-handle caches per registry.

    The caches key on registry *identity*: a new telemetry session, a farm
    shard's scoped handle, or a forked worker's registry each invalidate
    the previous binding in one pointer comparison.
    """

    kind = "counter"
    bound_class: type = BoundCounter

    __slots__ = ("name", "help", "labelnames", "_registry", "_family", "_bound")

    def __init__(self, name: str, help: str = "", labelnames: Sequence[str] = ()) -> None:
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._registry = None
        self._family = None
        self._bound: Dict[Tuple[str, ...], object] = {}

    def _resolve_family(self, registry):
        return registry.counter(self.name, self.help, self.labelnames)

    def family(self, registry):
        """The resolved metric family, re-resolved when *registry* changes."""
        if registry is not self._registry:
            self._family = self._resolve_family(registry)
            self._bound = {}
            self._registry = registry
        return self._family

    def bind(self, registry, labelvalues: Tuple[str, ...] = ()):
        """The bound handle for one label tuple (cached per registry)."""
        if registry is not self._registry:
            self.family(registry)
        handle = self._bound.get(labelvalues)
        if handle is None:
            interned = tuple(sys.intern(str(v)) for v in labelvalues)
            child = self._family.labels(**dict(zip(self.labelnames, interned)))
            handle = self.bound_class(child)
            registry.watch(handle)
            self._bound[interned] = handle
            if interned != labelvalues:
                self._bound[labelvalues] = handle
        return handle


class CounterSite(_Site):
    kind = "counter"
    bound_class = BoundCounter


class GaugeSite(_Site):
    kind = "gauge"
    bound_class = BoundGauge

    def _resolve_family(self, registry):
        return registry.gauge(self.name, self.help, self.labelnames)


class HistogramSite(_Site):
    kind = "histogram"
    bound_class = BoundHistogram

    __slots__ = ("buckets",)

    def __init__(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Optional[Sequence[float]] = None,
    ) -> None:
        super().__init__(name, help, labelnames)
        self.buckets = tuple(buckets) if buckets is not None else None

    def _resolve_family(self, registry):
        if self.buckets is not None:
            return registry.histogram(self.name, self.help, self.labelnames, self.buckets)
        return registry.histogram(self.name, self.help, self.labelnames)
