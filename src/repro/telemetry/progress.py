"""Campaign heartbeats: periodic snapshots for paper-scale runs.

A paper-scale campaign is ~2M injections; without a heartbeat the operator
stares at a silent process for minutes.  The fuzzer ticks this hub once per
injection (only when telemetry is enabled); every *every_injections* ticks
the hub assembles a :class:`Snapshot` from the metrics registry -- intents
so far, throughput against both clocks, manifestation counts -- and hands
it to every registered listener.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Callable, List, Optional

from repro.telemetry.metrics import INTENTS_INJECTED, MetricsRegistry

#: Default heartbeat cadence, in injections.
DEFAULT_EVERY_INJECTIONS = 1000


@dataclasses.dataclass(frozen=True)
class Snapshot:
    """One heartbeat's view of the running campaign."""

    injections: int
    wall_elapsed_s: float
    virtual_elapsed_ms: Optional[float]
    #: Injections per wall-clock second since telemetry was enabled.
    wall_rate: float
    #: Injections per *virtual* second (how fast the simulated study ran).
    virtual_rate: Optional[float]
    crashes: int
    anrs: int
    security_exceptions: int

    def render(self) -> str:
        virtual = (
            f"{self.virtual_elapsed_ms / 1000.0:.0f}s virtual"
            if self.virtual_elapsed_ms is not None
            else "no virtual clock"
        )
        vrate = f"{self.virtual_rate:.1f}/vs" if self.virtual_rate is not None else "-"
        return (
            f"[telemetry] {self.injections} intents in {self.wall_elapsed_s:.1f}s wall"
            f" ({virtual}) | {self.wall_rate:.0f}/s wall, {vrate}"
            f" | crashes={self.crashes} anrs={self.anrs}"
            f" denials={self.security_exceptions}"
        )


Listener = Callable[[Snapshot], None]


class Heartbeat:
    """Counts injections and emits snapshots on a fixed cadence."""

    enabled = True

    def __init__(
        self,
        registry: MetricsRegistry,
        every_injections: int = DEFAULT_EVERY_INJECTIONS,
        clock=None,
    ) -> None:
        if every_injections < 1:
            raise ValueError(f"heartbeat cadence must be >= 1, got {every_injections}")
        self._registry = registry
        self.every_injections = every_injections
        self._listeners: List[Listener] = []
        self._injections = 0
        # Provisional baseline only: the rate clock really starts at the
        # first tick (or an explicit start()).  Stamping *only* here skewed
        # every wall_rate downward by however long the handle sat idle
        # between telemetry.enable() and the campaign's first injection.
        self._start_wall_s = time.perf_counter()
        self._started = False
        self._clock = clock
        self._start_virtual_ms = clock.now_ms() if clock is not None else None
        self.last_snapshot: Optional[Snapshot] = None

    def set_clock(self, clock) -> None:
        """Attach the device clock; virtual elapsed time starts here."""
        self._clock = clock
        self._start_virtual_ms = clock.now_ms() if clock is not None else None

    def add_listener(self, listener: Listener) -> None:
        self._listeners.append(listener)

    def start(self) -> None:
        """Reset the rate baseline to *now* (the campaign actually starting).

        Called automatically by the first :meth:`count_injection`; callers
        that know their campaign start (the farm does) may call it
        explicitly to restart the baseline.
        """
        self._started = True
        self._start_wall_s = time.perf_counter()
        if self._clock is not None:
            self._start_virtual_ms = self._clock.now_ms()

    # -- ticking ---------------------------------------------------------------
    def count_injection(self) -> None:
        """One injection happened; emit a snapshot every Nth call."""
        if not self._started:
            self.start()
        self._injections += 1
        if self._injections % self.every_injections == 0:
            self.emit()

    def count_injections(self, count: int) -> None:
        """Count *count* injections at once (the fuzzer's batched tick).

        The injection loop accumulates a local counter and flushes it at
        batch boundaries, so the per-injection heartbeat cost is one local
        integer add.  A snapshot is emitted when the bulk add crosses an
        ``every_injections`` boundary -- at most one flush interval later
        than per-call counting would have emitted it.  ``count == 0`` is
        the loop-entry call that pins the rate baseline to campaign start
        without emitting.
        """
        if not self._started:
            self.start()
        if not count:
            return
        before = self._injections
        after = before + count
        self._injections = after
        every = self.every_injections
        if before // every != after // every:
            self.emit()

    def emit(self) -> Snapshot:
        """Assemble a snapshot now and notify listeners."""
        snapshot = self.snapshot()
        self.last_snapshot = snapshot
        for listener in self._listeners:
            listener(snapshot)
        return snapshot

    def snapshot(self) -> Snapshot:
        wall_elapsed = max(time.perf_counter() - self._start_wall_s, 1e-9)
        virtual_elapsed: Optional[float] = None
        virtual_rate: Optional[float] = None
        if self._clock is not None and self._start_virtual_ms is not None:
            virtual_elapsed = self._clock.now_ms() - self._start_virtual_ms
            if virtual_elapsed > 0:
                virtual_rate = self._injections / (virtual_elapsed / 1000.0)
        intents = self._registry.get(INTENTS_INJECTED)
        crashes = anrs = denials = 0
        if intents is not None:
            crashes = int(intents.total_where(outcome="crash"))
            anrs = int(intents.total_where(outcome="anr"))
            denials = int(intents.total_where(outcome="security_exception"))
        return Snapshot(
            injections=self._injections,
            wall_elapsed_s=wall_elapsed,
            virtual_elapsed_ms=virtual_elapsed,
            wall_rate=self._injections / wall_elapsed,
            virtual_rate=virtual_rate,
            crashes=crashes,
            anrs=anrs,
            security_exceptions=denials,
        )

    @property
    def injections(self) -> int:
        return self._injections


class NoopHeartbeat:
    """Disabled twin of :class:`Heartbeat`."""

    enabled = False
    every_injections = 0
    injections = 0
    last_snapshot = None

    def set_clock(self, clock) -> None:
        pass

    def add_listener(self, listener: Listener) -> None:
        pass

    def start(self) -> None:
        pass

    def count_injection(self) -> None:
        pass

    def count_injections(self, count: int) -> None:
        pass


NOOP_HEARTBEAT = NoopHeartbeat()
