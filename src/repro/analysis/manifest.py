"""Behaviour classification: from log events to the paper's four
manifestations.

Section III-C defines the severity lattice (decreasing order):

    **System reboot** > **Crash** > **Hang/unresponsive** > **No effect**

and the experiment classifies *per component* (Fig. 3a) and *per app per
campaign* (Table III), always taking the most severe manifestation
observed.  :class:`StudyCollector` is the stateful accumulator: the
experiment harness feeds it one logcat segment per (app, campaign) -- the
same per-app log collection rhythm the authors used -- and it folds the
parsed events into per-component records, per-app-campaign severities, and
reboot post-mortems.
"""

from __future__ import annotations

import dataclasses
import enum
from collections import Counter
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.logparse import (
    AnrEvent,
    FatalExceptionEvent,
    HandledExceptionEvent,
    LogEvent,
    NativeSignalEvent,
    RebootEvent,
    SecurityDenialEvent,
    attach_handled_frames,
    parse_events,
)
from repro.analysis.rootcause import (
    app_frame,
    attribute_anr,
    guilty_class,
    reboot_culprit_classes,
    reboot_window_events,
)
from repro.android.component import ComponentInfo, ComponentKind
from repro.android.package_manager import PackageInfo

SECURITY_EXCEPTION = "java.lang.SecurityException"


class Manifestation(enum.IntEnum):
    """The four behaviours, ordered so ``max()`` picks the most severe."""

    NO_EFFECT = 0
    HANG = 1
    CRASH = 2
    REBOOT = 3

    @property
    def label(self) -> str:
        return _LABELS[self]


_LABELS = {
    Manifestation.NO_EFFECT: "No Effect",
    Manifestation.HANG: "Hang",
    Manifestation.CRASH: "Crash",
    Manifestation.REBOOT: "Reboot",
}


@dataclasses.dataclass
class ComponentRecord:
    """Everything observed about one component across the whole study."""

    component: str                      # flat component string
    kind: ComponentKind
    package: str
    fatal_root_classes: Counter = dataclasses.field(default_factory=Counter)
    fatal_outer_classes: Counter = dataclasses.field(default_factory=Counter)
    handled_classes: Counter = dataclasses.field(default_factory=Counter)
    anr_count: int = 0
    anr_cause_classes: Counter = dataclasses.field(default_factory=Counter)
    security_denials: int = 0
    reboot_involved: bool = False

    @property
    def crash_count(self) -> int:
        return sum(self.fatal_root_classes.values())

    def manifestation(self) -> Manifestation:
        if self.reboot_involved:
            return Manifestation.REBOOT
        if self.crash_count:
            return Manifestation.CRASH
        if self.anr_count:
            return Manifestation.HANG
        return Manifestation.NO_EFFECT

    def exception_classes(self, include_security: bool = False) -> Counter:
        """Distinct-class exposure for Fig. 2 (one count per class)."""
        classes: Counter = Counter()
        for cls in set(self.fatal_root_classes) | set(self.handled_classes) | set(
            self.anr_cause_classes
        ):
            classes[cls] = 1
        if include_security and self.security_denials:
            classes[SECURITY_EXCEPTION] = 1
        return classes

    def dominant_crash_class(self) -> Optional[str]:
        if not self.fatal_root_classes:
            return None
        # Deterministic: highest count, ties broken alphabetically.
        return min(
            self.fatal_root_classes, key=lambda cls: (-self.fatal_root_classes[cls], cls)
        )


@dataclasses.dataclass
class RebootPostMortem:
    """One reboot with its escalation-window evidence."""

    time_ms: float
    reason: str
    package: str
    campaign: str
    culprit_classes: List[str]
    involved_components: List[str]
    native_signal: Optional[str]


class StudyCollector:
    """Accumulates an entire study's classification state."""

    def __init__(self, packages: Sequence[PackageInfo]) -> None:
        self._components: Dict[str, ComponentRecord] = {}
        self._class_to_component: Dict[str, str] = {}
        self._package_meta: Dict[str, PackageInfo] = {}
        for package in packages:
            self._package_meta[package.package] = package
            for info in package.components:
                flat = info.name.flatten_to_string()
                self._components[flat] = ComponentRecord(
                    component=flat, kind=info.kind, package=package.package
                )
                self._class_to_component[info.name.class_name] = flat
        #: (package, campaign) → most severe manifestation observed.
        self.app_campaign: Dict[Tuple[str, str], Manifestation] = {}
        self.reboots: List[RebootPostMortem] = []
        self.segments_folded = 0

    @classmethod
    def merge(cls, collectors: Sequence["StudyCollector"]) -> "StudyCollector":
        """Combine per-shard collectors into one study-wide collector.

        Every shard registers the *full* corpus universe (so untouched
        components stay classified No Effect exactly once); the merge
        therefore requires identical component universes, sums the
        per-component evidence counters, ORs reboot involvement, and
        concatenates reboot post-mortems in shard order.  Two shards
        classifying the same ``(package, campaign)`` segment is a
        partitioning bug and is rejected, as is an empty merge.
        """
        collectors = list(collectors)
        if not collectors:
            raise ValueError("nothing to merge: no collectors")
        first = collectors[0]
        merged = cls(list(first._package_meta.values()))
        for collector in collectors:
            if set(collector._components) != set(merged._components):
                raise ValueError(
                    "cannot merge collectors with different component universes"
                )
            for flat, record in collector._components.items():
                target = merged._components[flat]
                target.fatal_root_classes.update(record.fatal_root_classes)
                target.fatal_outer_classes.update(record.fatal_outer_classes)
                target.handled_classes.update(record.handled_classes)
                target.anr_count += record.anr_count
                target.anr_cause_classes.update(record.anr_cause_classes)
                target.security_denials += record.security_denials
                target.reboot_involved = target.reboot_involved or record.reboot_involved
            for key, severity in collector.app_campaign.items():
                if key in merged.app_campaign:
                    raise ValueError(
                        f"overlapping shard results: segment {key} classified "
                        "by more than one shard"
                    )
                merged.app_campaign[key] = severity
            merged.reboots.extend(collector.reboots)
            merged.segments_folded += collector.segments_folded
        return merged

    # -- metadata ------------------------------------------------------------------
    def package_meta(self, package: str) -> Optional[PackageInfo]:
        return self._package_meta.get(package)

    def component_records(self) -> List[ComponentRecord]:
        return list(self._components.values())

    def record_for(self, component_flat: str) -> Optional[ComponentRecord]:
        return self._components.get(component_flat)

    # -- folding -----------------------------------------------------------------
    def fold(self, log_text: str, package: str, campaign: str) -> None:
        """Fold one (app, campaign) logcat segment into the study state."""
        events = parse_events(log_text)
        attach_handled_frames(log_text, events)
        self.segments_folded += 1
        severity = self.app_campaign.get((package, campaign), Manifestation.NO_EFFECT)

        for event in events:
            if isinstance(event, FatalExceptionEvent):
                record = self._attribute_frames(event.frames, fallback_package=package)
                if record is not None:
                    record.fatal_root_classes[guilty_class(event)] += 1
                    record.fatal_outer_classes[event.outer_class] += 1
                severity = max(severity, Manifestation.CRASH)
            elif isinstance(event, AnrEvent):
                record = self._components.get(_expand_short(event.component))
                if record is not None:
                    record.anr_count += 1
                    cause = attribute_anr(event, events)
                    if cause is not None:
                        record.anr_cause_classes[cause] += 1
                severity = max(severity, Manifestation.HANG)
            elif isinstance(event, HandledExceptionEvent):
                record = self._attribute_frames(event.frames, fallback_package=None)
                if record is not None and event.exception_class != SECURITY_EXCEPTION:
                    record.handled_classes[event.exception_class] += 1
            elif isinstance(event, SecurityDenialEvent):
                if event.component is not None:
                    record = self._components.get(event.component)
                    if record is not None:
                        record.security_denials += 1
            elif isinstance(event, RebootEvent):
                severity = max(severity, Manifestation.REBOOT)
                self._fold_reboot(event, events, package, campaign)
        self.app_campaign[(package, campaign)] = severity

    def _fold_reboot(
        self,
        reboot: RebootEvent,
        events: Sequence[LogEvent],
        package: str,
        campaign: str,
    ) -> None:
        window = reboot_window_events(reboot, events)
        classes = reboot_culprit_classes(window)
        involved: List[str] = []
        native: Optional[str] = None
        for event in window:
            record: Optional[ComponentRecord] = None
            if isinstance(event, FatalExceptionEvent):
                record = self._attribute_frames(event.frames, fallback_package=package)
            elif isinstance(event, HandledExceptionEvent):
                record = self._attribute_frames(event.frames, fallback_package=None)
            elif isinstance(event, AnrEvent):
                record = self._components.get(_expand_short(event.component))
            elif isinstance(event, NativeSignalEvent):
                native = event.signal
            if record is not None:
                record.reboot_involved = True
                if record.component not in involved:
                    involved.append(record.component)
        self.reboots.append(
            RebootPostMortem(
                time_ms=reboot.time_ms,
                reason=reboot.reason,
                package=package,
                campaign=campaign,
                culprit_classes=classes,
                involved_components=involved,
                native_signal=native,
            )
        )

    def _attribute_frames(
        self, frames: Sequence[str], fallback_package: Optional[str]
    ) -> Optional[ComponentRecord]:
        cls = app_frame(frames)
        if cls is not None:
            flat = self._class_to_component.get(cls)
            if flat is not None:
                return self._components.get(flat)
        return None

    # -- summaries -----------------------------------------------------------------
    def manifestation_counts(self) -> Counter:
        """Fig. 3a: components per manifestation."""
        counts: Counter = Counter()
        for record in self._components.values():
            counts[record.manifestation()] += 1
        return counts

    def crashing_packages(self) -> Dict[str, int]:
        """package → total crash count, for apps that crashed at all."""
        crashes: Counter = Counter()
        for record in self._components.values():
            if record.crash_count:
                crashes[record.package] += record.crash_count
        return dict(crashes)

    def exception_distribution(
        self, include_security: bool = False
    ) -> Dict[ComponentKind, Counter]:
        """Fig. 2: per-kind distinct-class counts (one per component)."""
        per_kind: Dict[ComponentKind, Counter] = {
            ComponentKind.ACTIVITY: Counter(),
            ComponentKind.SERVICE: Counter(),
        }
        for record in self._components.values():
            if record.kind not in per_kind:
                continue
            per_kind[record.kind].update(record.exception_classes(include_security))
        return per_kind

    def security_share(self) -> float:
        """Fraction of all distinct (component, class) exceptions that are
        SecurityException -- the paper's 81.3% headline."""
        security = 0
        total = 0
        for record in self._components.values():
            classes = record.exception_classes(include_security=True)
            total += sum(classes.values())
            security += classes.get(SECURITY_EXCEPTION, 0)
        if total == 0:
            return 0.0
        return security / total


def _expand_short(short: str) -> str:
    package, _, cls = short.partition("/")
    if cls.startswith("."):
        cls = package + cls
    return f"{package}/{cls}"
