"""Population-level analysis of a fleet run: crash rates per cohort.

The paper's study measured one watch; the fleet kernel's question is the
population one -- *how does reliability vary across a heterogeneous
device population?*  This module turns the merged
:class:`~repro.fleet.pairs.PairSummary` list into per-cohort crash-rate
distributions (crashes per 1000 injected intents, p50/p95/p99 by the
nearest-rank method) plus the totals the ROADMAP's population report asks
for.

Everything is deterministic: summaries arrive merged by pair id, cohorts
render in sorted name order, and nearest-rank percentiles never
interpolate -- so the rendered report is byte-identical at any
(lanes x workers) packing of the same fleet.
"""

from __future__ import annotations

import dataclasses
import math
from typing import TYPE_CHECKING, Dict, List, Sequence, Tuple

if TYPE_CHECKING:  # pragma: no cover - break the fleet <-> analysis cycle
    from repro.fleet.pairs import PairSummary


def nearest_rank(values: Sequence[float], pct: float) -> float:
    """The nearest-rank percentile: the ceil(p/100 * n)-th smallest value.

    Never interpolates, so the result is always a value that actually
    occurred -- and, unlike interpolating estimators, is bit-stable across
    platforms (no float blending of neighbours).
    """
    if not values:
        raise ValueError("nearest_rank needs at least one value")
    if not 0.0 < pct <= 100.0:
        raise ValueError(f"percentile must be in (0, 100], got {pct}")
    ordered = sorted(values)
    rank = math.ceil(pct / 100.0 * len(ordered))
    return ordered[rank - 1]


@dataclasses.dataclass(frozen=True)
class CohortStats:
    """One cohort's slice of the fleet, with its crash-rate distribution."""

    cohort: str
    model: str
    pairs: int
    sent: int
    delivered: int
    crashes: int
    anrs: int
    reboots: int
    quarantined: int
    compat_mismatches: int
    ambient_transitions: int
    #: Crashes per 1000 injected intents, nearest-rank over the cohort's pairs.
    crash_rate_p50: float
    crash_rate_p95: float
    crash_rate_p99: float

    @property
    def crash_rate_overall(self) -> float:
        if self.sent == 0:
            return 0.0
        return 1000.0 * self.crashes / self.sent


@dataclasses.dataclass(frozen=True)
class PopulationReport:
    """The fleet-wide report: cohorts in sorted name order."""

    pairs: int
    sent: int
    crashes: int
    cohorts: Tuple[CohortStats, ...]

    def cohort(self, name: str) -> CohortStats:
        for stats in self.cohorts:
            if stats.cohort == name:
                return stats
        raise KeyError(name)


def population_report(summaries: Sequence[PairSummary]) -> PopulationReport:
    """Fold merged pair summaries into the per-cohort population report."""
    by_cohort: Dict[str, List[PairSummary]] = {}
    for summary in summaries:
        by_cohort.setdefault(summary.cohort, []).append(summary)
    cohorts = []
    for name in sorted(by_cohort):
        members = by_cohort[name]
        rates = [member.crash_rate for member in members]
        cohorts.append(
            CohortStats(
                cohort=name,
                model=members[0].model,
                pairs=len(members),
                sent=sum(m.sent for m in members),
                delivered=sum(m.delivered for m in members),
                crashes=sum(m.crashes for m in members),
                anrs=sum(m.anrs for m in members),
                reboots=sum(m.reboots for m in members),
                quarantined=sum(m.quarantined for m in members),
                compat_mismatches=sum(m.compat_mismatches for m in members),
                ambient_transitions=sum(m.ambient_transitions for m in members),
                crash_rate_p50=nearest_rank(rates, 50.0),
                crash_rate_p95=nearest_rank(rates, 95.0),
                crash_rate_p99=nearest_rank(rates, 99.0),
            )
        )
    return PopulationReport(
        pairs=len(summaries),
        sent=sum(s.sent for s in summaries),
        crashes=sum(s.crashes for s in summaries),
        cohorts=tuple(cohorts),
    )


def render_population(report: PopulationReport) -> str:
    """Render the population report as a fixed-width text table."""
    lines = [
        "Fleet population report",
        f"  pairs: {report.pairs}  intents sent: {report.sent}  "
        f"crashes: {report.crashes}",
        "",
        f"  {'cohort':<10} {'model':<14} {'pairs':>5} {'sent':>7} "
        f"{'crash':>6} {'anr':>5} {'boot':>5} {'comp':>6} "
        f"{'p50':>7} {'p95':>7} {'p99':>7}",
    ]
    for stats in report.cohorts:
        lines.append(
            f"  {stats.cohort:<10} {stats.model:<14} {stats.pairs:>5} "
            f"{stats.sent:>7} {stats.crashes:>6} {stats.anrs:>5} "
            f"{stats.reboots:>5} {stats.compat_mismatches:>6} "
            f"{stats.crash_rate_p50:>7.2f} {stats.crash_rate_p95:>7.2f} "
            f"{stats.crash_rate_p99:>7.2f}"
        )
    lines.append("")
    lines.append("  crash-rate percentiles: crashes per 1000 intents, nearest-rank")
    return "\n".join(lines)
