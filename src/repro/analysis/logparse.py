"""Parsing device logs back into structured failure events.

The paper's methodology is log-driven: "we collected all of the log files
(over 2GB) from the wearable using logcat, through the adb interface.
Then, we analyzed the logs to gather information, and for each component
classified the behavior of the application."  This module is that first
analysis stage: plain ``threadtime`` logcat text in, a typed event stream
out.

Recognised events:

* ``FATAL EXCEPTION: main`` blocks → :class:`FatalExceptionEvent` (with the
  full ``Caused by:`` chain and the app stack frames for attribution);
* app-logged (caught) exceptions → :class:`HandledExceptionEvent`;
* ``ActivityManager`` permission denials → :class:`SecurityDenialEvent`;
* ANR blocks → :class:`AnrEvent`;
* fatal native signals → :class:`NativeSignalEvent`;
* reboot markers → :class:`RebootEvent`.

The parser is *total*: arbitrary garbage lines are skipped, never raised on
-- a property the test suite checks with hypothesis, because a fuzzing
study's own log parser dying on weird logs would be a bad joke.
"""

from __future__ import annotations

import dataclasses
import re
from typing import Iterator, List, Optional, Sequence, Union

# `06-20 10:00:01.234  1234  1234 E AndroidRuntime: message`
_LINE_RE = re.compile(
    r"^(?P<month>\d{2})-(?P<day>\d{2}) "
    r"(?P<hour>\d{2}):(?P<minute>\d{2}):(?P<second>\d{2})\.(?P<ms>\d{3}) +"
    r"(?P<pid>\d+) +(?P<tid>\d+) (?P<level>[VDIWEF]) (?P<tag>[^:]+): (?P<message>.*)$"
)

#: A Java exception class name: dotted lowercase packages, CamelCase class,
#: possibly with inner-class ``$`` parts.
_EXC_CLASS = r"(?:[a-z][\w]*\.)+[A-Z][\w$]*(?:Exception|Error)"
_EXC_RE = re.compile(rf"(?P<cls>{_EXC_CLASS})(?:: (?P<msg>.*))?$")
_FRAME_RE = re.compile(r"^\t?at (?P<cls>[\w.$]+)\.(?P<method>[\w<>$-]+)\((?P<loc>[^)]*)\)$")
_ANR_RE = re.compile(r"^ANR in (?P<process>\S+) \((?P<component>[^)]+)\)$")
_NATIVE_RE = re.compile(
    r"^Fatal signal (?P<number>\d+) \((?P<signal>\w+)\) in (?P<process>\S+)(?:: (?P<reason>.*))?$"
)
_REBOOT_RE = re.compile(r"^!!! SYSTEM REBOOT: (?P<reason>.*) !!!$")
_CMP_RE = re.compile(r"cmp=(?P<cmp>[\w.$]+/[\w.$]+)")


def _parse_time_ms(match: "re.Match[str]") -> float:
    """Invert the logcat timestamp back to virtual milliseconds-since-boot."""
    day = int(match.group("day")) - 20
    hour = int(match.group("hour")) - 10 + day * 24
    return (
        hour * 3_600_000
        + int(match.group("minute")) * 60_000
        + int(match.group("second")) * 1_000
        + int(match.group("ms"))
    )


@dataclasses.dataclass
class LogLine:
    time_ms: float
    pid: int
    level: str
    tag: str
    message: str


@dataclasses.dataclass
class FatalExceptionEvent:
    """One uncaught-exception crash (a FATAL EXCEPTION block)."""

    time_ms: float
    process: str
    pid: int
    exception_chain: List[str]          # outermost → innermost class names
    messages: List[str]
    frames: List[str]                   # app-frame class names, topmost first

    @property
    def outer_class(self) -> str:
        return self.exception_chain[0]

    @property
    def root_class(self) -> str:
        return self.exception_chain[-1]


@dataclasses.dataclass
class HandledExceptionEvent:
    """An exception an app caught and logged (W-level)."""

    time_ms: float
    pid: int
    tag: str
    exception_class: str
    message: Optional[str]
    frames: List[str]


@dataclasses.dataclass
class SecurityDenialEvent:
    """A system-side SecurityException (permission denial)."""

    time_ms: float
    detail: str
    component: Optional[str]            # flat component string if extractable


@dataclasses.dataclass
class AnrEvent:
    time_ms: float
    process: str
    component: str                      # short component string
    reason: str


@dataclasses.dataclass
class NativeSignalEvent:
    time_ms: float
    signal: str
    number: int
    process: str
    reason: str


@dataclasses.dataclass
class RebootEvent:
    time_ms: float
    reason: str


LogEvent = Union[
    FatalExceptionEvent,
    HandledExceptionEvent,
    SecurityDenialEvent,
    AnrEvent,
    NativeSignalEvent,
    RebootEvent,
]


def parse_lines(text: str) -> Iterator[LogLine]:
    """Tokenise logcat text; malformed lines are skipped."""
    for raw in text.splitlines():
        match = _LINE_RE.match(raw)
        if match is None:
            continue
        yield LogLine(
            time_ms=_parse_time_ms(match),
            pid=int(match.group("pid")),
            level=match.group("level"),
            tag=match.group("tag").strip(),
            message=match.group("message"),
        )


def parse_events(text: str) -> List[LogEvent]:
    """Extract the full event stream from logcat text."""
    events: List[LogEvent] = []
    lines = list(parse_lines(text))
    i = 0
    while i < len(lines):
        line = lines[i]
        consumed = (
            _try_fatal_block(lines, i, events)
            or _try_anr_block(lines, i, events)
            or _try_single_line(line, events)
        )
        i += max(consumed, 1)
    return events


# -- block scanners -----------------------------------------------------------


def _try_fatal_block(lines: Sequence[LogLine], i: int, events: List[LogEvent]) -> int:
    line = lines[i]
    if line.tag != "AndroidRuntime" or line.message != "FATAL EXCEPTION: main":
        return 0
    process, pid = "", line.pid
    chain: List[str] = []
    messages: List[str] = []
    frames: List[str] = []
    j = i + 1
    while j < len(lines) and lines[j].tag == "AndroidRuntime" and lines[j].pid == line.pid:
        message = lines[j].message
        if message == "FATAL EXCEPTION: main":
            break
        if message.startswith("Process: "):
            process = message[len("Process: "):].split(",", 1)[0]
        elif message.startswith("Caused by: "):
            exc = _EXC_RE.match(message[len("Caused by: "):])
            if exc:
                chain.append(exc.group("cls"))
                messages.append(exc.group("msg") or "")
        elif _FRAME_RE.match(message):
            frame = _FRAME_RE.match(message)
            frames.append(frame.group("cls"))
        else:
            exc = _EXC_RE.match(message)
            if exc and not chain:
                chain.append(exc.group("cls"))
                messages.append(exc.group("msg") or "")
        j += 1
    if chain:
        events.append(
            FatalExceptionEvent(
                time_ms=line.time_ms,
                process=process,
                pid=pid,
                exception_chain=chain,
                messages=messages,
                frames=frames,
            )
        )
    return j - i


def _try_anr_block(lines: Sequence[LogLine], i: int, events: List[LogEvent]) -> int:
    line = lines[i]
    if line.tag != "ActivityManager":
        return 0
    match = _ANR_RE.match(line.message)
    if match is None:
        return 0
    reason = ""
    j = i + 1
    while j < len(lines) and lines[j].tag == "ActivityManager" and j - i < 4:
        if lines[j].message.startswith("Reason: "):
            reason = lines[j].message[len("Reason: "):]
        j += 1
    events.append(
        AnrEvent(
            time_ms=line.time_ms,
            process=match.group("process"),
            component=match.group("component"),
            reason=reason,
        )
    )
    return j - i


def _try_single_line(line: LogLine, events: List[LogEvent]) -> int:
    message = line.message
    reboot = _REBOOT_RE.match(message)
    if reboot:
        events.append(RebootEvent(time_ms=line.time_ms, reason=reboot.group("reason")))
        return 1
    native = _NATIVE_RE.match(message)
    if native:
        events.append(
            NativeSignalEvent(
                time_ms=line.time_ms,
                signal=native.group("signal"),
                number=int(native.group("number")),
                process=native.group("process"),
                reason=native.group("reason") or "",
            )
        )
        return 1
    if line.tag == "ActivityManager" and "SecurityException: Permission Denial:" in message:
        detail = message.split("Permission Denial:", 1)[1].strip()
        cmp_match = _CMP_RE.search(message)
        component = None
        if cmp_match:
            component = _expand_component(cmp_match.group("cmp"))
        else:
            component = _component_from_denial(detail)
        events.append(
            SecurityDenialEvent(time_ms=line.time_ms, detail=detail, component=component)
        )
        return 1
    if line.level in ("W", "E"):
        found = re.search(rf"(?P<cls>{_EXC_CLASS})(?:: (?P<msg>.*))?$", message)
        if found and not message.startswith(("Caused by",)):
            events.append(
                HandledExceptionEvent(
                    time_ms=line.time_ms,
                    pid=line.pid,
                    tag=line.tag,
                    exception_class=found.group("cls"),
                    message=found.group("msg"),
                    frames=[],
                )
            )
            return 1
    return 0


def _expand_component(short: str) -> str:
    """Expand ``pkg/.Cls`` to ``pkg/pkg.Cls``."""
    package, _, cls = short.partition("/")
    if cls.startswith("."):
        cls = package + cls
    return f"{package}/{cls}"


def _component_from_denial(detail: str) -> Optional[str]:
    """Pull a target component out of a denial detail, if present."""
    match = re.search(r" to ([\w.$]+/[\w.$]+)", detail)
    if match:
        return _expand_component(match.group(1))
    return None


def attach_handled_frames(text: str, events: List[LogEvent]) -> None:
    """Second pass: attach ``at Class.method(...)`` frame hints to handled
    exceptions, matching by pid and adjacency in the raw text.

    Handled-exception warnings are logged as a small block -- the exception
    line followed by a few frame lines under the same tag/pid.  The frames
    carry the throwing component's class, which the classifier needs for
    attribution.
    """
    lines = list(parse_lines(text))
    by_key = {}
    for event in events:
        if isinstance(event, HandledExceptionEvent):
            by_key.setdefault((event.pid, event.exception_class), []).append(event)
    pending: Optional[HandledExceptionEvent] = None
    queue_index = {}
    for line in lines:
        frame = _FRAME_RE.match(line.message)
        if frame is not None and pending is not None and line.pid == pending.pid:
            pending.frames.append(frame.group("cls"))
            continue
        found = re.search(rf"(?P<cls>{_EXC_CLASS})", line.message)
        pending = None
        if found and line.level in ("W", "E"):
            key = (line.pid, found.group("cls"))
            queue = by_key.get(key)
            if queue:
                index = queue_index.get(key, 0)
                if index < len(queue):
                    pending = queue[index]
                    queue_index[key] = index + 1
