"""Data builders for the paper's figures (2, 3a, 3b, 4).

Each function takes a folded :class:`~repro.analysis.manifest.StudyCollector`
and returns plain dict/Counter data that the report renderers and the
benchmark harness print; nothing here re-reads logs.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Optional, Tuple

from repro.analysis.manifest import (
    SECURITY_EXCEPTION,
    ComponentRecord,
    Manifestation,
    StudyCollector,
)
from repro.analysis.rootcause import equal_blame
from repro.android.component import ComponentKind
from repro.android.package_manager import AppOrigin

NO_EXCEPTION = "(no exception)"


def fig2_exception_distribution(
    collector: StudyCollector,
) -> Dict[str, object]:
    """Fig. 2: uncaught/observed exception types by component kind.

    SecurityExceptions are excluded from the per-class distribution (they
    are reported separately as the overall share, the paper's 81.3%).
    Each exception class is counted once per component.
    """
    per_kind = collector.exception_distribution(include_security=False)
    merged: Counter = Counter()
    for counts in per_kind.values():
        merged.update(counts)
    return {
        "by_kind": {kind.value: dict(counts) for kind, counts in per_kind.items()},
        "overall": dict(merged),
        "security_share": collector.security_share(),
    }


def fig3a_manifestations(collector: StudyCollector) -> Dict[str, object]:
    """Fig. 3a: component counts (and shares) per manifestation."""
    counts = collector.manifestation_counts()
    total = sum(counts.values())
    return {
        "counts": {m.label: counts.get(m, 0) for m in Manifestation},
        "total_components": total,
        "shares": {
            m.label: (counts.get(m, 0) / total if total else 0.0) for m in Manifestation
        },
    }


def fig3b_rootcause_by_manifestation(collector: StudyCollector) -> Dict[str, Dict[str, float]]:
    """Fig. 3b: root-cause exception shares within each manifestation."""
    records = collector.component_records()
    result: Dict[str, Dict[str, float]] = {}

    # Crash: the dominant fatal root class of each crash component.
    crash_counter: Counter = Counter()
    for record in records:
        if record.manifestation() == Manifestation.CRASH:
            dominant = record.dominant_crash_class()
            if dominant:
                crash_counter[dominant] += 1
    result[Manifestation.CRASH.label] = _normalise(crash_counter)

    # Hang: the exception logged just before the handler blocked.
    hang_counter: Counter = Counter()
    for record in records:
        if record.manifestation() == Manifestation.HANG:
            if record.anr_cause_classes:
                dominant = min(
                    record.anr_cause_classes,
                    key=lambda cls: (-record.anr_cause_classes[cls], cls),
                )
                hang_counter[dominant] += 1
            else:
                hang_counter[NO_EXCEPTION] += 1
    result[Manifestation.HANG.label] = _normalise(hang_counter)

    # Reboot: tight-knit escalation -- pooled classes, equal blame.
    pooled: List[str] = []
    for post_mortem in collector.reboots:
        for cls in post_mortem.culprit_classes:
            if cls not in pooled:
                pooled.append(cls)
    result[Manifestation.REBOOT.label] = equal_blame(pooled)

    # No effect: mostly silent; ~10% threw but handled it.
    no_effect_counter: Counter = Counter()
    for record in records:
        if record.manifestation() == Manifestation.NO_EFFECT:
            if record.handled_classes:
                dominant = min(
                    record.handled_classes,
                    key=lambda cls: (-record.handled_classes[cls], cls),
                )
                no_effect_counter[dominant] += 1
            else:
                no_effect_counter[NO_EXCEPTION] += 1
    result[Manifestation.NO_EFFECT.label] = _normalise(no_effect_counter)
    return result


def fig3b_base_counts(collector: StudyCollector) -> Dict[str, int]:
    """The per-manifestation component counts shown at each bar's base."""
    counts = collector.manifestation_counts()
    return {m.label: counts.get(m, 0) for m in Manifestation}


def fig4_crashes_by_app_class(collector: StudyCollector) -> Dict[str, object]:
    """Fig. 4: crash-causing exceptions grouped by built-in vs third party.

    Percentages are "calculated taking the two application classes
    together"; the headline app-level crash rates (64% of built-in apps vs
    46% of third-party) are included.
    """
    class_counters: Dict[str, Counter] = {
        AppOrigin.BUILT_IN.value: Counter(),
        AppOrigin.THIRD_PARTY.value: Counter(),
    }
    crashed_apps: Dict[str, set] = {
        AppOrigin.BUILT_IN.value: set(),
        AppOrigin.THIRD_PARTY.value: set(),
    }
    app_totals: Counter = Counter()
    for record in collector.component_records():
        meta = collector.package_meta(record.package)
        if meta is None:
            continue
        origin = meta.origin.value
        if record.fatal_root_classes:
            dominant = record.dominant_crash_class()
            class_counters[origin][dominant] += 1
            crashed_apps[origin].add(record.package)
    seen_packages = set()
    for record in collector.component_records():
        meta = collector.package_meta(record.package)
        if meta is None or record.package in seen_packages:
            continue
        seen_packages.add(record.package)
        app_totals[meta.origin.value] += 1

    total_crash_components = sum(sum(c.values()) for c in class_counters.values())
    shares = {
        origin: {
            cls: count / total_crash_components if total_crash_components else 0.0
            for cls, count in counter.items()
        }
        for origin, counter in class_counters.items()
    }
    rates = {
        origin: (
            len(crashed_apps[origin]) / app_totals[origin] if app_totals[origin] else 0.0
        )
        for origin in class_counters
    }
    return {
        "class_counts": {o: dict(c) for o, c in class_counters.items()},
        "class_shares": shares,
        "app_crash_rate": rates,
        "apps_crashed": {o: sorted(s) for o, s in crashed_apps.items()},
        "apps_total": dict(app_totals),
    }


def _normalise(counter: Counter) -> Dict[str, float]:
    total = sum(counter.values())
    if total == 0:
        return {}
    return {cls: count / total for cls, count in counter.items()}
