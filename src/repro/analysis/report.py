"""ASCII rendering of the reproduced tables and figures.

The benchmark harness prints these so a run of ``pytest benchmarks/``
regenerates, row for row, what the paper reports.  Renderers are pure
string builders over the data dicts from :mod:`repro.analysis.tables` and
:mod:`repro.analysis.figures`.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence

from repro.analysis.figures import NO_EXCEPTION
from repro.analysis.manifest import Manifestation, StudyCollector


def _shorten(exception_class: str) -> str:
    """``java.lang.NullPointerException`` → ``NullPointerException``."""
    return exception_class.rsplit(".", 1)[-1]


def render_table1(rows: Sequence[Dict]) -> str:
    lines = ["TABLE I: FUZZ INTENT CAMPAIGNS", "-" * 78]
    for row in rows:
        lines.append(f"{row['campaign'].value}: {row['title']}")
        lines.append(f"   volume: {row['formula']}  ({row['intents_per_component']} intents/component)")
        if "intents_sent" in row:
            lines.append(f"   measured this run: {row['intents_sent']} intents")
        lines.append(f"   example: {row['example']}")
    return "\n".join(lines)


def render_table2(rows: Sequence[Dict]) -> str:
    lines = [
        "TABLE II: APPLICATION STATS",
        "-" * 78,
        f"{'Category':<22} {'Classification':<14} {'#':>4} {'#Activities':>12} {'#Services':>10}",
    ]
    for row in rows:
        lines.append(
            f"{row['category']:<22} {row['classification']:<14} {row['apps']:>4} "
            f"{row['activities']:>12} {row['services']:>10}"
        )
    return "\n".join(lines)


def render_table3(data: Mapping[str, Mapping[str, Mapping[str, float]]]) -> str:
    campaigns = sorted(data)
    manifestations = [m.label for m in reversed(Manifestation)]  # Reboot first
    lines = ["TABLE III: DISTRIBUTION OF BEHAVIORS AMONG FUZZ INTENT CAMPAIGNS", "-" * 98]
    header = f"{'Campaign':<10}"
    for manifestation in manifestations:
        header += f" | {manifestation + ' H/NH':>20}"
    lines.append(header)
    for campaign in campaigns:
        row = f"{campaign:<10}"
        for manifestation in manifestations:
            cell = data[campaign][manifestation]
            health = cell.get("Health/Fitness", 0.0)
            other = cell.get("Not Health/Fitness", 0.0)
            row += f" | {health:>8.0%} /{other:>8.0%} "
        lines.append(row)
    return "\n".join(lines)


def render_table4(rows: Sequence[Dict]) -> str:
    lines = [
        "TABLE IV: DISTRIBUTION OF CRASHES ON ANDROID PHONE PER EXCEPTION TYPE",
        "-" * 78,
        f"{'Exception':<50} {'#Crashes':>9} {'%':>7}",
    ]
    for row in rows:
        lines.append(
            f"{row['exception']:<50} {row['crashes']:>9} {row['share']:>7.1%}"
        )
    total = sum(row["crashes"] for row in rows)
    lines.append(f"{'Total':<50} {total:>9}")
    return "\n".join(lines)


def render_table5(rows: Sequence[Dict]) -> str:
    lines = [
        "TABLE V: DISTRIBUTION OF EXCEPTIONS AND CRASHES DURING QGJ-UI EXPERIMENTS",
        "-" * 78,
        f"{'Experiment':<12} {'#Injected Events':>17} {'Exceptions Raised':>22} {'Crashes':>18}",
    ]
    for row in rows:
        lines.append(
            f"{row['experiment']:<12} {row['injected_events']:>17} "
            f"{row['exceptions_raised']:>13} ({row['exception_rate']:>5.1%}) "
            f"{row['crashes']:>9} ({row['crash_rate']:.2%})"
        )
    return "\n".join(lines)


def _render_bar(shares: Mapping[str, float], width: int = 40) -> List[str]:
    lines = []
    for cls, share in sorted(shares.items(), key=lambda item: (-item[1], item[0])):
        bar = "#" * max(1, int(share * width)) if share > 0 else ""
        lines.append(f"    {_shorten(cls):<36} {share:>6.1%} {bar}")
    return lines


def render_fig2(data: Mapping[str, object]) -> str:
    lines = [
        "FIG. 2: DISTRIBUTION OF UNCAUGHT EXCEPTION TYPES "
        "(SecurityException excluded)",
        "-" * 78,
        f"SecurityException share of all exceptions: {data['security_share']:.1%}",
    ]
    by_kind: Mapping[str, Mapping[str, int]] = data["by_kind"]  # type: ignore[assignment]
    for kind in sorted(by_kind):
        counts = by_kind[kind]
        total = sum(counts.values())
        lines.append(f"  {kind.title()}s ({total} component-exception pairs):")
        shares = {cls: count / total for cls, count in counts.items()} if total else {}
        lines.extend(_render_bar(shares))
    return "\n".join(lines)


def render_fig3a(data: Mapping[str, object]) -> str:
    lines = [
        "FIG. 3a: DISTRIBUTION OF ERROR MANIFESTATIONS AMONG COMPONENTS",
        "-" * 78,
        f"components targeted: {data['total_components']}",
    ]
    counts: Mapping[str, int] = data["counts"]  # type: ignore[assignment]
    shares: Mapping[str, float] = data["shares"]  # type: ignore[assignment]
    for label in ("No Effect", "Hang", "Crash", "Reboot"):
        lines.append(f"  {label:<12} {counts[label]:>5}  ({shares[label]:.1%})")
    return "\n".join(lines)


def render_fig3b(
    data: Mapping[str, Mapping[str, float]], base_counts: Mapping[str, int]
) -> str:
    lines = [
        "FIG. 3b: DISTRIBUTION OF EXCEPTIONS BY MANIFESTATION",
        "-" * 78,
    ]
    for label in ("No Effect", "Hang", "Crash", "Reboot"):
        shares = data.get(label, {})
        lines.append(f"  {label} (n={base_counts.get(label, 0)} components):")
        if not shares:
            lines.append("    (none)")
            continue
        display = {
            (cls if cls == NO_EXCEPTION else cls): share for cls, share in shares.items()
        }
        lines.extend(_render_bar(display))
    return "\n".join(lines)


def render_fig4(data: Mapping[str, object]) -> str:
    lines = [
        "FIG. 4: EXCEPTIONS CAUSING CRASHES, BY APP CLASSIFICATION",
        "-" * 78,
    ]
    rates: Mapping[str, float] = data["app_crash_rate"]  # type: ignore[assignment]
    totals: Mapping[str, int] = data["apps_total"]  # type: ignore[assignment]
    crashed: Mapping[str, Sequence[str]] = data["apps_crashed"]  # type: ignore[assignment]
    for origin in ("Built-in", "Third Party"):
        lines.append(
            f"  {origin}: {len(crashed[origin])}/{totals[origin]} apps crashed "
            f"({rates[origin]:.0%})"
        )
    shares: Mapping[str, Mapping[str, float]] = data["class_shares"]  # type: ignore[assignment]
    for origin in ("Built-in", "Third Party"):
        lines.append(f"  {origin} crash causes (share of all crash components):")
        lines.extend(_render_bar(shares[origin]))
    return "\n".join(lines)


def render_reboot_postmortems(collector: StudyCollector) -> str:
    """The Section IV-B style reboot post-mortems."""
    if not collector.reboots:
        return "No device reboots observed."
    lines = ["DEVICE REBOOT POST-MORTEMS", "-" * 78]
    for i, post_mortem in enumerate(collector.reboots, start=1):
        lines.append(f"Reboot #{i} (campaign {post_mortem.campaign}, app {post_mortem.package})")
        lines.append(f"  reason: {post_mortem.reason}")
        lines.append(f"  native signal: {post_mortem.native_signal or '(none)'}")
        lines.append(
            "  implicated components: "
            + (", ".join(post_mortem.involved_components) or "(none)")
        )
        lines.append(
            "  culprit exception classes: "
            + (", ".join(_shorten(c) for c in post_mortem.culprit_classes) or "(none)")
        )
    return "\n".join(lines)
