"""Software-aging analytics (the paper's Section IV-E research direction).

The authors hypothesise that the observed reboots are "a manifestation of
error accumulation in the Android watch" and point to software-aging
research (Cotroneo et al., ISSRE'16) for detection metrics.  This module
implements that direction on top of the reproduction's log pipeline:

* extract an *error-event time series* from parsed log events (crashes,
  ANRs, handled exceptions, each with a severity weight);
* estimate the **aging trend** with the Mann-Kendall test (the standard
  non-parametric trend detector in the aging literature) plus a least-squares
  slope over windowed error intensity;
* reconstruct the device's **accumulated-damage trajectory** (the same
  exponential-decay model the simulated system server runs) and estimate
  time-to-exhaustion against a reboot threshold;
* recommend a **rejuvenation interval**: how often a watchdog restart would
  have to fire to keep accumulated damage below the reboot threshold.

Everything is pure computation over event lists, so it works on any log the
parser understands -- including, in principle, real logcat captures.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np
from scipy import stats

from repro.analysis.logparse import (
    AnrEvent,
    FatalExceptionEvent,
    HandledExceptionEvent,
    LogEvent,
    NativeSignalEvent,
    RebootEvent,
)

#: Severity weights mirroring the system server's aging deposits.
WEIGHT_FATAL = 1.0
WEIGHT_ANR = 3.0
WEIGHT_HANDLED = 0.1
WEIGHT_NATIVE = 10.0


@dataclasses.dataclass(frozen=True)
class ErrorSample:
    """One weighted error observation."""

    time_ms: float
    weight: float
    kind: str


def error_series(events: Iterable[LogEvent]) -> List[ErrorSample]:
    """Extract the weighted error time series from parsed log events."""
    samples: List[ErrorSample] = []
    for event in events:
        if isinstance(event, FatalExceptionEvent):
            samples.append(ErrorSample(event.time_ms, WEIGHT_FATAL, "fatal"))
        elif isinstance(event, AnrEvent):
            samples.append(ErrorSample(event.time_ms, WEIGHT_ANR, "anr"))
        elif isinstance(event, HandledExceptionEvent):
            samples.append(ErrorSample(event.time_ms, WEIGHT_HANDLED, "handled"))
        elif isinstance(event, NativeSignalEvent):
            samples.append(ErrorSample(event.time_ms, WEIGHT_NATIVE, "native"))
    samples.sort(key=lambda s: s.time_ms)
    return samples


def windowed_intensity(
    samples: Sequence[ErrorSample], window_ms: float = 10_000.0
) -> Tuple[np.ndarray, np.ndarray]:
    """Bucket the series into fixed windows → (window centres, total weight)."""
    if window_ms <= 0:
        raise ValueError(f"window_ms must be positive, got {window_ms}")
    if not samples:
        return np.array([]), np.array([])
    start = samples[0].time_ms
    end = samples[-1].time_ms
    buckets = max(1, int((end - start) / window_ms) + 1)
    centres = start + (np.arange(buckets) + 0.5) * window_ms
    weights = np.zeros(buckets)
    for sample in samples:
        index = min(buckets - 1, int((sample.time_ms - start) / window_ms))
        weights[index] += sample.weight
    return centres, weights


@dataclasses.dataclass
class TrendResult:
    """Output of the aging-trend analysis."""

    kendall_tau: float
    p_value: float
    slope_per_minute: float
    is_aging: bool
    windows: int


def mann_kendall_trend(
    samples: Sequence[ErrorSample],
    window_ms: float = 10_000.0,
    alpha: float = 0.05,
) -> TrendResult:
    """Mann-Kendall trend test over windowed error intensity.

    A significant positive tau means error intensity grows with uptime --
    the signature of software aging.  Falls back to a neutral result when
    there are too few windows to test.
    """
    centres, weights = windowed_intensity(samples, window_ms)
    if len(centres) < 4:
        return TrendResult(
            kendall_tau=0.0,
            p_value=1.0,
            slope_per_minute=0.0,
            is_aging=False,
            windows=len(centres),
        )
    tau, p_value = stats.kendalltau(centres, weights)
    tau = 0.0 if math.isnan(tau) else float(tau)
    p_value = 1.0 if math.isnan(p_value) else float(p_value)
    slope, _intercept = np.polyfit(centres / 60_000.0, weights, 1)
    return TrendResult(
        kendall_tau=tau,
        p_value=p_value,
        slope_per_minute=float(slope),
        is_aging=bool(tau > 0 and p_value < alpha),
        windows=len(centres),
    )


def damage_trajectory(
    samples: Sequence[ErrorSample],
    half_life_ms: float = 60_000.0,
    resolution_ms: float = 1_000.0,
) -> Tuple[np.ndarray, np.ndarray]:
    """The exponentially-decaying accumulated-damage curve over time.

    This reconstructs, from logs alone, the same quantity the simulated
    system server tracks internally -- letting the analyst *see* the
    escalation that precedes a reboot.
    """
    if not samples:
        return np.array([]), np.array([])
    decay = math.log(2.0) / half_life_ms
    start = samples[0].time_ms
    end = samples[-1].time_ms + half_life_ms + resolution_ms
    times = np.arange(start, end, resolution_ms)
    damage = np.zeros_like(times, dtype=float)
    for sample in samples:
        mask = times >= sample.time_ms
        damage[mask] += sample.weight * np.exp(-decay * (times[mask] - sample.time_ms))
    return times, damage


def peak_damage(samples: Sequence[ErrorSample], half_life_ms: float = 60_000.0) -> float:
    """Maximum accumulated damage reached anywhere in the series."""
    _, damage = damage_trajectory(samples, half_life_ms)
    return float(damage.max()) if damage.size else 0.0


@dataclasses.dataclass
class RejuvenationPlan:
    """A watchdog-restart schedule keeping damage under a threshold."""

    threshold: float
    peak_damage: float
    exceeds_threshold: bool
    #: Restart interval (ms) that would keep peak damage below threshold,
    #: or ``None`` when no restart is needed.
    recommended_interval_ms: Optional[float]


def plan_rejuvenation(
    samples: Sequence[ErrorSample],
    threshold: float = 8.0,
    half_life_ms: float = 60_000.0,
) -> RejuvenationPlan:
    """Find the coarsest restart interval that keeps damage sub-threshold.

    Models rejuvenation as a periodic state reset: damage accumulated in one
    interval never carries into the next.  Searches intervals by halving
    from the full series duration until the per-interval peak stays under
    *threshold* (or gives up at 1 s).
    """
    peak = peak_damage(samples, half_life_ms)
    if peak < threshold:
        return RejuvenationPlan(
            threshold=threshold,
            peak_damage=peak,
            exceeds_threshold=False,
            recommended_interval_ms=None,
        )
    if not samples:  # pragma: no cover - peak>0 implies samples
        raise ValueError("no samples")
    duration = samples[-1].time_ms - samples[0].time_ms + 1.0
    interval = duration
    while interval > 1_000.0:
        if _max_interval_damage(samples, interval, half_life_ms) < threshold:
            return RejuvenationPlan(
                threshold=threshold,
                peak_damage=peak,
                exceeds_threshold=True,
                recommended_interval_ms=interval,
            )
        interval /= 2.0
    return RejuvenationPlan(
        threshold=threshold,
        peak_damage=peak,
        exceeds_threshold=True,
        recommended_interval_ms=1_000.0,
    )


def _max_interval_damage(
    samples: Sequence[ErrorSample], interval_ms: float, half_life_ms: float
) -> float:
    start = samples[0].time_ms
    worst = 0.0
    bucket: List[ErrorSample] = []
    boundary = start + interval_ms
    for sample in samples:
        while sample.time_ms >= boundary:
            if bucket:
                worst = max(worst, peak_damage(bucket, half_life_ms))
                bucket = []
            boundary += interval_ms
        bucket.append(
            ErrorSample(sample.time_ms, sample.weight, sample.kind)
        )
    if bucket:
        worst = max(worst, peak_damage(bucket, half_life_ms))
    return worst


def aging_report(events: Sequence[LogEvent], threshold: float = 8.0) -> str:
    """Human-readable aging analysis of one log segment."""
    samples = error_series(events)
    trend = mann_kendall_trend(samples)
    plan = plan_rejuvenation(samples, threshold=threshold)
    reboots = sum(1 for e in events if isinstance(e, RebootEvent))
    lines = [
        "SOFTWARE AGING ANALYSIS",
        "-" * 60,
        f"error events: {len(samples)}   reboots observed: {reboots}",
        f"Mann-Kendall tau: {trend.kendall_tau:+.3f} (p={trend.p_value:.3f}, "
        f"{trend.windows} windows) -> {'AGING' if trend.is_aging else 'no significant trend'}",
        f"error-intensity slope: {trend.slope_per_minute:+.3f} weight/min",
        f"peak accumulated damage: {plan.peak_damage:.2f} (reboot threshold {threshold})",
    ]
    if plan.recommended_interval_ms is not None:
        lines.append(
            "rejuvenation: restart every "
            f"{plan.recommended_interval_ms / 1000.0:.0f}s would keep damage sub-threshold"
        )
    else:
        lines.append("rejuvenation: not needed at this error intensity")
    return "\n".join(lines)
