"""Data builders for the paper's tables (I-V)."""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Optional, Sequence

from repro.analysis.manifest import Manifestation, StudyCollector
from repro.android.package_manager import AppCategory, PackageInfo
from repro.qgj.campaigns import Campaign, table1_rows
from repro.qgj.results import FuzzSummary
from repro.qgj.ui_fuzzer import UiInjectionResult

#: Table IV folds exception classes with fewer than this many crashes into
#: an "Others" row.
OTHERS_THRESHOLD = 5


def table1_campaigns(summary: Optional[FuzzSummary] = None, stride: int = 1) -> List[Dict]:
    """Table I: the campaign definitions, plus measured volumes if given."""
    rows = table1_rows(stride)
    if summary is not None:
        sent: Counter = Counter()
        for app in summary.apps:
            sent[app.campaign] += app.sent
        for row in rows:
            row["intents_sent"] = sent.get(row["campaign"], 0)
    return rows


def table2_population(packages: Sequence[PackageInfo]) -> List[Dict]:
    """Table II: application stats per (category, origin) cell."""
    cells: Dict[tuple, Dict[str, int]] = {}
    for package in packages:
        key = (package.category.value, package.origin.value)
        cell = cells.setdefault(key, {"apps": 0, "activities": 0, "services": 0})
        cell["apps"] += 1
        cell["activities"] += len(package.activities())
        cell["services"] += len(package.services())
    rows = [
        {
            "category": category,
            "classification": origin,
            **counts,
        }
        for (category, origin), counts in sorted(cells.items())
    ]
    totals = {
        "category": "Total",
        "classification": "",
        "apps": sum(r["apps"] for r in rows),
        "activities": sum(r["activities"] for r in rows),
        "services": sum(r["services"] for r in rows),
    }
    rows.append(totals)
    return rows


def table3_behaviors(collector: StudyCollector) -> Dict[str, Dict[str, Dict[str, float]]]:
    """Table III: per-campaign behaviour distribution, Health vs Not-Health.

    Structure: ``{campaign: {manifestation: {category: share}}}`` where the
    share is the fraction of that category's apps whose most severe
    manifestation under that campaign was the given one.
    """
    categories = {
        AppCategory.HEALTH_FITNESS.value: set(),
        AppCategory.OTHER.value: set(),
    }
    for (package, _campaign) in collector.app_campaign:
        meta = collector.package_meta(package)
        if meta is not None:
            categories[meta.category.value].add(package)

    result: Dict[str, Dict[str, Dict[str, float]]] = {}
    for campaign in Campaign:
        per_manifestation: Dict[str, Dict[str, float]] = {
            m.label: {} for m in Manifestation
        }
        for category, members in categories.items():
            total = len(members)
            tally: Counter = Counter()
            for package in members:
                severity = collector.app_campaign.get(
                    (package, campaign.value), Manifestation.NO_EFFECT
                )
                tally[severity] += 1
            for manifestation in Manifestation:
                share = tally.get(manifestation, 0) / total if total else 0.0
                per_manifestation[manifestation.label][category] = share
        result[campaign.value] = per_manifestation
    return result


def table4_phone_crashes(collector: StudyCollector) -> List[Dict]:
    """Table IV: phone crash distribution per exception type.

    Each (component, exception class) pair counts once, the same
    per-component de-duplication the paper applies ("each exception is
    counted once per component, even if it was raised several times");
    classes below :data:`OTHERS_THRESHOLD` fold into "Others".
    """
    per_class: Counter = Counter()
    for record in collector.component_records():
        for cls in record.fatal_root_classes:
            per_class[cls] += 1
    total = sum(per_class.values())
    rows: List[Dict] = []
    others = 0
    for cls, count in per_class.most_common():
        if count < OTHERS_THRESHOLD:
            others += count
            continue
        rows.append({"exception": cls, "crashes": count, "share": count / total if total else 0.0})
    if others:
        rows.append({"exception": "Others", "crashes": others, "share": others / total if total else 0.0})
    return rows


def table5_ui(results: Dict[str, UiInjectionResult]) -> List[Dict]:
    """Table V: the QGJ-UI experiment's per-mode summary."""
    rows = []
    for mode in ("semi-valid", "random"):
        result = results.get(mode)
        if result is None:
            continue
        rows.append(
            {
                "experiment": result.mode,
                "injected_events": result.injected_events,
                "exceptions_raised": result.exceptions_raised,
                "exception_rate": result.exception_rate(),
                "crashes": result.crashes,
                "crash_rate": result.crash_rate(),
            }
        )
    return rows
