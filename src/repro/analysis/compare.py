"""Cross-study comparison: Android Wear vs Android vs the 2012 baseline.

The paper's central longitudinal claim (Sections IV-A/IV-C/V):

    "Over the years, input validation has improved and fewer
    NullPointerExceptions are seen, however, Android Wear apps crash from
    unhandled IllegalStateExceptions at a higher rate. […] in contrast to
    [Maji et al. 2012], Android Wear shows fewer crashes from
    NullPointerExceptions and more crashes from IllegalStateExceptions."

This module makes that three-way comparison a first-class analysis: it
carries the JJB/DSN-2012 baseline distribution as reference data, extracts
comparable crash-cause distributions from any pair of folded
:class:`~repro.analysis.manifest.StudyCollector` instances, and renders the
evolution table the conclusion paraphrases.
"""

from __future__ import annotations

import dataclasses
from collections import Counter
from typing import Dict, List, Mapping, Optional, Sequence

from repro.analysis.manifest import StudyCollector

#: Crash-cause distribution reported for stock Android 2.2/2.3 by
#: Maji et al., "An Empirical Study of the Robustness of Inter-component
#: Communication in Android" (DSN 2012) -- the JJB study QGJ extends.  The
#: paper's headline reference point: "NullPointerExceptions contributed to
#: 46% of all exceptions".
JJB_2012_BASELINE: Dict[str, float] = {
    "java.lang.NullPointerException": 0.46,
    "java.lang.IllegalArgumentException": 0.12,
    "java.lang.ClassCastException": 0.09,
    "java.lang.ArrayIndexOutOfBoundsException": 0.08,
    "java.lang.IllegalStateException": 0.05,
    "java.lang.SecurityException": 0.05,
    "(others)": 0.15,
}

#: Classes the longitudinal story tracks explicitly.
TRACKED_CLASSES = (
    "java.lang.NullPointerException",
    "java.lang.IllegalArgumentException",
    "java.lang.IllegalStateException",
    "java.lang.ClassNotFoundException",
)


def crash_share_distribution(collector: StudyCollector) -> Dict[str, float]:
    """Per-class share of crash components in one folded study."""
    counts: Counter = Counter()
    for record in collector.component_records():
        dominant = record.dominant_crash_class()
        if dominant is not None:
            counts[dominant] += 1
    total = sum(counts.values())
    if total == 0:
        return {}
    return {cls: count / total for cls, count in counts.items()}


@dataclasses.dataclass
class EvolutionRow:
    """One exception class across the three study points."""

    exception: str
    android_2012: float
    android_711: float
    wear_20: float

    @property
    def trend_2012_to_wear(self) -> str:
        delta = self.wear_20 - self.android_2012
        if abs(delta) < 0.02:
            return "flat"
        return "grew" if delta > 0 else "shrank"


def evolution_table(
    wear: StudyCollector,
    phone: StudyCollector,
    baseline: Optional[Mapping[str, float]] = None,
    classes: Sequence[str] = TRACKED_CLASSES,
) -> List[EvolutionRow]:
    """The longitudinal comparison over *classes*."""
    if baseline is None:
        baseline = JJB_2012_BASELINE
    wear_shares = crash_share_distribution(wear)
    phone_shares = crash_share_distribution(phone)
    return [
        EvolutionRow(
            exception=cls,
            android_2012=baseline.get(cls, 0.0),
            android_711=phone_shares.get(cls, 0.0),
            wear_20=wear_shares.get(cls, 0.0),
        )
        for cls in classes
    ]


@dataclasses.dataclass
class ComparisonVerdict:
    """The paper's three longitudinal claims, checked against data."""

    npe_shrank_since_2012: bool
    ise_grew_on_wear: bool
    cnfe_phone_heavy: bool

    def all_hold(self) -> bool:
        return self.npe_shrank_since_2012 and self.ise_grew_on_wear and self.cnfe_phone_heavy


def verdict(
    wear: StudyCollector,
    phone: StudyCollector,
    baseline: Optional[Mapping[str, float]] = None,
) -> ComparisonVerdict:
    """Check the conclusion's claims against two folded studies."""
    rows = {row.exception: row for row in evolution_table(wear, phone, baseline)}
    npe = rows["java.lang.NullPointerException"]
    ise = rows["java.lang.IllegalStateException"]
    cnfe = rows["java.lang.ClassNotFoundException"]
    return ComparisonVerdict(
        npe_shrank_since_2012=npe.wear_20 < npe.android_2012,
        ise_grew_on_wear=ise.wear_20 > ise.android_2012,
        cnfe_phone_heavy=cnfe.android_711 > cnfe.wear_20,
    )


def render_evolution(rows: Sequence[EvolutionRow]) -> str:
    """The longitudinal table, DSN-2012 → Android 7.1.1 → Wear 2.0."""
    lines = [
        "CRASH-CAUSE EVOLUTION: ANDROID 2012 -> ANDROID 7.1.1 -> WEAR 2.0",
        "-" * 78,
        f"{'Exception':<32} {'2012':>8} {'7.1.1':>8} {'Wear':>8}   trend since 2012",
    ]
    for row in rows:
        short = row.exception.rsplit(".", 1)[-1]
        lines.append(
            f"{short:<32} {row.android_2012:>8.1%} {row.android_711:>8.1%} "
            f"{row.wear_20:>8.1%}   {row.trend_2012_to_wear}"
        )
    return "\n".join(lines)
