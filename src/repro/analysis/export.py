"""Machine-readable export of a full study's results.

The ASCII report (:mod:`repro.analysis.report`) is for humans; downstream
consumers -- plotting scripts, regression dashboards, meta-analyses over
multiple seeds -- want structured data.  :func:`export_results` flattens
every reproduced table and figure into one JSON-serialisable dict with a
stable schema, and :func:`dump_json` writes it.

Schema stability is part of the public API: keys are only added, never
renamed, and `schema_version` is bumped on additions.
"""

from __future__ import annotations

import json
from typing import Dict, Optional

from repro.analysis import figures, tables
from repro.analysis.manifest import Manifestation

SCHEMA_VERSION = 1


def export_results(wear, phone, ui) -> Dict[str, object]:
    """Flatten three study results into one JSON-safe dict.

    Parameters are the result objects from
    :mod:`repro.experiments.wear_experiment`, ``phone_experiment`` and
    ``ui_experiment`` (or the cached runners).
    """
    table1 = [
        {
            "campaign": row["campaign"].value,
            "title": row["title"],
            "intents_per_component": row["intents_per_component"],
            "intents_sent": row.get("intents_sent", 0),
        }
        for row in tables.table1_campaigns(wear.summary)
    ]
    table3 = tables.table3_behaviors(wear.collector)
    fig2 = figures.fig2_exception_distribution(wear.collector)
    fig3a = figures.fig3a_manifestations(wear.collector)
    fig3b = figures.fig3b_rootcause_by_manifestation(wear.collector)
    fig4 = figures.fig4_crashes_by_app_class(wear.collector)

    return {
        "schema_version": SCHEMA_VERSION,
        "config": {
            "name": wear.config.name,
            "ui_events": ui.config.ui_events,
            "corpus_seed": wear.config.corpus_seed,
        },
        "totals": {
            "wear_intents": wear.intents_sent,
            "phone_intents": phone.intents_sent,
            "wear_reboots": wear.reboot_count,
            "virtual_hours": wear.virtual_hours(),
        },
        "table1_campaigns": table1,
        "table2_population": tables.table2_population(wear.corpus.packages()),
        "table3_behaviors": table3,
        "table4_phone_crashes": tables.table4_phone_crashes(phone.collector),
        "table5_ui": tables.table5_ui(ui.results),
        "fig2_exceptions": fig2,
        "fig3a_manifestations": fig3a,
        "fig3b_rootcause": fig3b,
        "fig4_app_class": fig4,
        "reboot_postmortems": [
            {
                "time_ms": pm.time_ms,
                "reason": pm.reason,
                "package": pm.package,
                "campaign": pm.campaign,
                "culprit_classes": pm.culprit_classes,
                "involved_components": pm.involved_components,
                "native_signal": pm.native_signal,
            }
            for pm in wear.collector.reboots
        ],
    }


def dump_json(results: Dict[str, object], path: Optional[str] = None, indent: int = 2) -> str:
    """Serialise *results*; writes to *path* when given, returns the text."""
    text = json.dumps(results, indent=indent, sort_keys=True)
    if path is not None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(text)
    return text


def assert_json_safe(results: Dict[str, object]) -> None:
    """Round-trip check used by tests and the CLI before writing."""
    round_tripped = json.loads(json.dumps(results))
    if round_tripped.get("schema_version") != results.get("schema_version"):
        raise ValueError("export is not JSON-stable")
