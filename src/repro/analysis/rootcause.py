"""Root-cause attribution rules.

The paper describes "a simplified and semi-automatic root cause analysis":

* within one crash, "the first exception in a chain of exceptions is
  assigned the guilt (e.g. in the case of RuntimeExceptions)" -- for a
  ``Caused by:`` chain that is the *innermost* (original) throwable, the one
  thrown first;
* an ANR is attributed to the exception the app logged just before its
  handler blocked (the temporal chain);
* "in some cases, a tight-knit pattern among the exceptions is deduced and
  one cannot be inferred to causally precede the others.  In such cases, we
  assign the blame for that error manifestation equally among the exception
  classes" -- which is how reboots, with their multi-component escalation
  windows, are scored.

These rules are pure functions over the parsed event stream, so they can be
property-tested in isolation.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from repro.analysis.logparse import (
    AnrEvent,
    FatalExceptionEvent,
    HandledExceptionEvent,
    LogEvent,
    RebootEvent,
)

#: How far back from a reboot marker the escalation window reaches.  It must
#: cover the ANR-to-SIGABRT path (the blocked handler stalls the process for
#: several seconds before the watchdog acts).
REBOOT_WINDOW_MS = 15_000.0

#: How far back from an ANR we look for the precipitating logged exception.
ANR_ATTRIBUTION_WINDOW_MS = 2_000.0

_FRAMEWORK_PREFIXES = ("android.", "java.", "com.android.internal.", "dalvik.")


def guilty_class(event: FatalExceptionEvent) -> str:
    """The exception class guilt is assigned to for one crash.

    The innermost cause is the throwable that was raised first; wrappers
    like the framework's ``RuntimeException: Unable to start activity …``
    merely re-throw it.
    """
    return event.exception_chain[-1]


def app_frame(frames: Sequence[str]) -> Optional[str]:
    """The first non-framework class in a stack, for component attribution."""
    for cls in frames:
        if not cls.startswith(_FRAMEWORK_PREFIXES):
            return cls
    return None


def attribute_anr(
    anr: AnrEvent, events: Iterable[LogEvent]
) -> Optional[str]:
    """The exception class that precipitated *anr*, if one was logged.

    Scans handled-exception events in the attribution window before the ANR
    timestamp; the latest one wins (closest temporal antecedent).  Returns
    ``None`` for silent hangs.
    """
    best: Optional[HandledExceptionEvent] = None
    for event in events:
        if not isinstance(event, HandledExceptionEvent):
            continue
        if event.time_ms > anr.time_ms:
            continue
        if anr.time_ms - event.time_ms > ANR_ATTRIBUTION_WINDOW_MS:
            continue
        if best is None or event.time_ms >= best.time_ms:
            best = event
    return best.exception_class if best else None


def reboot_window_events(
    reboot: RebootEvent, events: Iterable[LogEvent]
) -> List[LogEvent]:
    """Every event inside the escalation window before *reboot*."""
    return [
        event
        for event in events
        if not isinstance(event, RebootEvent)
        and 0 <= reboot.time_ms - getattr(event, "time_ms", reboot.time_ms + 1)
        <= REBOOT_WINDOW_MS
    ]


def reboot_culprit_classes(window: Iterable[LogEvent]) -> List[str]:
    """Distinct exception classes implicated in a reboot window.

    Every class in every cause chain counts -- the escalation is a
    tight-knit pattern, so no single class can be singled out.
    """
    classes: List[str] = []
    for event in window:
        if isinstance(event, FatalExceptionEvent):
            for cls in event.exception_chain:
                if cls not in classes:
                    classes.append(cls)
        elif isinstance(event, HandledExceptionEvent):
            if event.exception_class not in classes:
                classes.append(event.exception_class)
    return classes


def equal_blame(classes: Sequence[str]) -> Dict[str, float]:
    """Split one unit of blame equally across *classes* (empty → {})."""
    if not classes:
        return {}
    share = 1.0 / len(classes)
    return {cls: share for cls in classes}
