"""The system server: health tracking, software aging, and reboots.

The paper's most severe finding is that a *wearable can be rebooted by
unprivileged, malformed intents* -- and that neither observed reboot was due
to a single "deadly" intent:

    "These reboots did not occur in response to a single deadly intent but
    rather at specific states of the device due to escalation of multiple
    errors.  This would indicate that the malformed intents caused error
    accumulation, which eventually rebooted the system."

This module implements that *software-aging* model explicitly:

* every crash and ANR deposits a decaying error weight into
  :class:`AgingModel` (exponential decay, configurable half-life);
* two escalation paths can convert accumulated damage into a reboot,
  matching the paper's post-mortems:

  1. **SensorService path** -- an ANR in a client holding sensor listeners
     wedges the native service; the system SIGABRTs it; losing a core
     native service on an aged system reboots the device.
  2. **Ambient path** -- a crash-looping component that should bind the
     Ambient service starves it; on an aged system the system process takes
     a SIGSEGV and the device reboots.
"""

from __future__ import annotations

import dataclasses
import math
from typing import TYPE_CHECKING, Dict, List, Optional, Set, Tuple

from repro.android.clock import Clock
from repro.android.component import ComponentInfo
from repro.android.jtypes import NativeSignal, Throwable, sigsegv
from repro.android.log import TAG_SYSTEM, TAG_WATCHDOG, Logcat
from repro.android.process import ProcessRecord

if TYPE_CHECKING:  # pragma: no cover - typing-only import
    from repro.android.device import Device
    from repro.android.sensor import SensorService

SYSTEM_SERVER_PROCESS = "system_server"

# Aging weights (dimensionless damage units).
WEIGHT_CRASH = 1.0
WEIGHT_CRASH_BUILTIN = 2.0
WEIGHT_ANR = 3.0
WEIGHT_CRASH_LOOP_BONUS = 2.0

# Escalation thresholds.
DEFAULT_AGING_HALF_LIFE_MS = 60_000.0
DEFAULT_REBOOT_THRESHOLD = 8.0
CRASH_LOOP_COUNT = 3
CRASH_LOOP_WINDOW_MS = 30_000.0


@dataclasses.dataclass
class AgingEvent:
    time_ms: float
    weight: float
    source: str


class AgingModel:
    """Exponentially decaying accumulation of error weight."""

    def __init__(self, clock: Clock, half_life_ms: float = DEFAULT_AGING_HALF_LIFE_MS) -> None:
        self._clock = clock
        self.half_life_ms = half_life_ms
        self._events: List[AgingEvent] = []

    def deposit(self, weight: float, source: str) -> None:
        if weight < 0:
            raise ValueError(f"negative aging weight: {weight}")
        self._events.append(AgingEvent(self._clock.now_ms(), weight, source))
        # Keep the window bounded: events older than 10 half-lives are
        # negligible (< 0.1% of their weight).
        horizon = self._clock.now_ms() - 10 * self.half_life_ms
        if len(self._events) > 256:
            self._events = [e for e in self._events if e.time_ms >= horizon]

    def score(self) -> float:
        now = self._clock.now_ms()
        total = 0.0
        for event in self._events:
            age = now - event.time_ms
            total += event.weight * math.pow(0.5, age / self.half_life_ms)
        return total

    def reset(self) -> None:
        self._events.clear()

    def event_count(self) -> int:
        return len(self._events)


@dataclasses.dataclass
class RebootRecord:
    """One device reboot, for the analysis and the post-mortem examples."""

    time_ms: float
    reason: str
    triggering_component: Optional[str]
    aging_score: float
    signal: Optional[NativeSignal]


class SystemServer:
    """Simulated ``system_server`` with watchdog and aging-based escalation."""

    def __init__(
        self,
        device: "Device",
        clock: Clock,
        logcat: Logcat,
        reboot_threshold: float = DEFAULT_REBOOT_THRESHOLD,
        aging_half_life_ms: float = DEFAULT_AGING_HALF_LIFE_MS,
    ) -> None:
        self._device = device
        self._clock = clock
        self._logcat = logcat
        self.reboot_threshold = reboot_threshold
        self.aging = AgingModel(clock, half_life_ms=aging_half_life_ms)
        self.process = device.processes.get_or_start(
            SYSTEM_SERVER_PROCESS, package="android", is_system=True
        )
        self.reboots: List[RebootRecord] = []
        #: Packages whose components are expected to bind the Ambient service.
        self._ambient_binders: Set[str] = set()
        self._ambient_bind_failures: Dict[str, int] = {}
        #: (component, time) of recent crashes for loop detection.
        self._recent_crashes: Dict[str, List[float]] = {}
        self._sensor_service: Optional["SensorService"] = None

    # -- wiring -----------------------------------------------------------------
    def attach_sensor_service(self, sensor_service: "SensorService") -> None:
        self._sensor_service = sensor_service
        sensor_service.attach_system_server(self)

    def register_ambient_binder(self, package: str) -> None:
        """Mark *package* as one whose activities bind the Ambient service."""
        self._ambient_binders.add(package)

    # -- health hooks (called by the activity manager) ----------------------------
    def on_app_crash(
        self, process: ProcessRecord, info: ComponentInfo, throwable: Throwable
    ) -> None:
        package = self._device.packages.get_package(info.package)
        built_in = package is not None and package.is_built_in
        weight = WEIGHT_CRASH_BUILTIN if built_in else WEIGHT_CRASH
        component_key = info.name.flatten_to_string()
        loop = self._note_crash(component_key)
        if loop:
            weight += WEIGHT_CRASH_LOOP_BONUS
        self.aging.deposit(weight, source=f"crash:{component_key}")
        if loop and info.package in self._ambient_binders:
            self._on_ambient_bind_starvation(info)

    def on_app_anr(self, process: ProcessRecord, info: ComponentInfo, reason: str) -> None:
        self.aging.deposit(WEIGHT_ANR, source=f"anr:{info.name.flatten_to_string()}")
        if self._sensor_service is not None:
            self._sensor_service.on_client_anr(process)

    def on_start_failure(self, info: ComponentInfo, throwable: Throwable) -> None:
        self.aging.deposit(0.5, source=f"start-failure:{info.name.flatten_to_string()}")

    # -- escalation paths ---------------------------------------------------------
    def on_native_service_death(self, service_name: str, signal: NativeSignal) -> None:
        """A core native service died (e.g. SensorService SIGABRT)."""
        self._logcat.e(
            TAG_SYSTEM,
            f"core native service '{service_name}' died ({signal.signal}); system unstable",
            pid=self.process.pid,
        )
        self._reboot(
            reason=f"core native service {service_name} died with {signal.signal}",
            component=None,
            signal=signal,
        )

    def _on_ambient_bind_starvation(self, info: ComponentInfo) -> None:
        count = self._ambient_bind_failures.get(info.package, 0) + 1
        self._ambient_bind_failures[info.package] = count
        self._logcat.w(
            TAG_SYSTEM,
            f"unable to bind Ambient service: {info.package} crash-looping (attempt {count})",
            pid=self.process.pid,
        )
        if self.aging.score() >= self.reboot_threshold:
            signal = sigsegv(
                SYSTEM_SERVER_PROCESS,
                reason=f"ambient binding starved by {info.package}",
            )
            self._logcat.native_crash(signal, pid=self.process.pid)
            self._reboot(
                reason=f"SIGSEGV in system process (ambient bind starvation by {info.package})",
                component=info.name.flatten_to_string(),
                signal=signal,
            )

    def _note_crash(self, component_key: str) -> bool:
        """Record a crash; True when *component_key* is now crash-looping."""
        now = self._clock.now_ms()
        times = self._recent_crashes.setdefault(component_key, [])
        times.append(now)
        self._recent_crashes[component_key] = [
            t for t in times if now - t <= CRASH_LOOP_WINDOW_MS
        ]
        return len(self._recent_crashes[component_key]) >= CRASH_LOOP_COUNT

    # -- reboot -----------------------------------------------------------------
    def _reboot(
        self, reason: str, component: Optional[str], signal: Optional[NativeSignal]
    ) -> None:
        record = RebootRecord(
            time_ms=self._clock.now_ms(),
            reason=reason,
            triggering_component=component,
            aging_score=self.aging.score(),
            signal=signal,
        )
        self.reboots.append(record)
        self._logcat.w(TAG_WATCHDOG, f"WATCHDOG: rebooting: {reason}")
        self._device.perform_reboot(reason)

    def after_reboot(self) -> None:
        """Reset volatile state once the device has rebooted."""
        self.aging.reset()
        self._recent_crashes.clear()
        self._ambient_bind_failures.clear()
        self.process = self._device.processes.get_or_start(
            SYSTEM_SERVER_PROCESS, package="android", is_system=True
        )

    def on_soft_restart(self, reason: str) -> None:
        """system_server bounced in place (fault injection, not a reboot).

        Every service restarts and volatile health state resets -- the same
        post-restart world :meth:`after_reboot` rebuilds -- but the device
        itself never went down: no watchdog line, no reboot record, and the
        boot count is untouched.
        """
        self._logcat.w(
            TAG_SYSTEM,
            f"system_server restarting: {reason}",
            pid=self.process.pid,
        )
        self.after_reboot()

    # -- introspection ------------------------------------------------------------
    @property
    def reboot_count(self) -> int:
        return len(self.reboots)

    def health_summary(self) -> Dict[str, float]:
        return {
            "aging_score": self.aging.score(),
            "reboots": float(len(self.reboots)),
            "tracked_components": float(len(self._recent_crashes)),
        }
