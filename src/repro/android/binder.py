"""Binder IPC: remote handles, transactions, and death notification.

Only the slice the study needs is modelled: a client holds an
:class:`IBinder` to an object living in some process; transacting on it when
that process has died raises ``DeadObjectException``.  The paper ties
``android.os.DeadObjectException`` to the *unresponsive* manifestation and
notes it "hints that garbage collection can have the undesirable effect" --
our behaviour models and the sensor stack use this channel for exactly that
kind of propagation.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

from repro.android.jtypes import DeadObjectException, IllegalArgumentException, Throwable
from repro.android.process import ProcessRecord
from repro.telemetry.metrics import BINDER_TRANSACTIONS
from repro.telemetry.record import CounterSite

#: One site shared by every binder handle; series are bound per
#: (descriptor, outcome) pair on first use.
_TRANSACTIONS_SITE = CounterSite(
    BINDER_TRANSACTIONS,
    "Binder transactions, by interface descriptor and outcome.",
    ("descriptor", "outcome"),
)


class IBinder:
    """A handle to an object hosted in *owner_process*."""

    def __init__(self, descriptor: str, owner_process: ProcessRecord) -> None:
        self.descriptor = descriptor
        self._owner = owner_process
        self._handlers: Dict[str, Callable[..., Any]] = {}
        # Bound transaction-counter handles, cached per registry identity
        # (same discipline as Logcat and ActivityManager).
        self._bound_registry = None
        self._transaction_handles: Dict[str, object] = {}

    def _count_transaction(self, outcome: str) -> None:
        t = self._owner.runtime.telemetry
        if t.enabled:
            metrics = t.metrics
            if metrics is not self._bound_registry:
                self._transaction_handles = {}
                self._bound_registry = metrics
            handle = self._transaction_handles.get(outcome)
            if handle is None:
                handle = _TRANSACTIONS_SITE.bind(metrics, (self.descriptor, outcome))
                self._transaction_handles[outcome] = handle
            handle.pending += 1

    def __getstate__(self) -> dict:
        # Telemetry never survives a pickle: cached bound handles would
        # smuggle the live registry into checkpoint snapshots.
        state = self.__dict__.copy()
        state["_bound_registry"] = None
        state["_transaction_handles"] = {}
        return state

    @property
    def owner(self) -> ProcessRecord:
        return self._owner

    def is_binder_alive(self) -> bool:
        return self._owner.alive

    def register(self, code: str, handler: Callable[..., Any]) -> None:
        """Register a transaction handler (server side)."""
        self._handlers[code] = handler

    def transact(self, code: str, *args: Any, **kwargs: Any) -> Any:
        """Perform a transaction; raises on dead owner or unknown code."""
        profiler = self._owner.runtime.telemetry.profiler
        if profiler.enabled:
            profiler.enter("binder")
            try:
                return self._transact(code, *args, **kwargs)
            finally:
                profiler.exit()
        return self._transact(code, *args, **kwargs)

    def _transact(self, code: str, *args: Any, **kwargs: Any) -> Any:
        plane = self._owner.runtime.faults
        if plane.armed:
            # A due transport fault fails the transaction before it reaches
            # the remote -- DeadObjectException / TransactionTooLargeException
            # exactly as the kernel driver would surface them.
            try:
                plane.on_transact(self._owner.clock, self.descriptor)
            except Throwable:
                self._count_transaction("transport_fault")
                raise
        if not self._owner.alive:
            self._count_transaction("dead_object")
            raise DeadObjectException(
                f"Transaction failed on {self.descriptor}: process {self._owner.name} is dead"
            )
        handler = self._handlers.get(code)
        if handler is None:
            self._count_transaction("unknown_code")
            raise IllegalArgumentException(
                f"Unknown transaction code {code!r} on {self.descriptor}"
            )
        self._count_transaction("ok")
        return handler(*args, **kwargs)

    def link_to_death(self, recipient: Callable[[ProcessRecord], None]) -> None:
        self._owner.link_to_death(recipient)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "alive" if self.is_binder_alive() else "dead"
        return f"<IBinder {self.descriptor} ({state})>"


class ServiceRegistry:
    """``ServiceManager`` analogue: name → binder."""

    def __init__(self) -> None:
        self._services: Dict[str, IBinder] = {}

    def add_service(self, name: str, binder: IBinder) -> None:
        self._services[name] = binder

    def get_service(self, name: str) -> Optional[IBinder]:
        binder = self._services.get(name)
        if binder is None:
            return None
        return binder

    def check_service(self, name: str) -> Optional[IBinder]:
        binder = self._services.get(name)
        if binder is None or not binder.is_binder_alive():
            return None
        return binder

    def remove_service(self, name: str) -> None:
        self._services.pop(name, None)

    def names(self) -> tuple:
        return tuple(sorted(self._services))
