"""The ``adb`` endpoint: logcat access and shell tools (``am``/``pm``/``input``).

Section IV-D of the paper rests on the *specific* input-validation behaviour
of these developer tools:

* ``pm`` rejects a garbage permission string outright ("no such permission
  exists") -- strong validation at the tool;
* ``am`` happily forwards an arbitrary action string such as
  ``S0me.r@ndom.$trinG`` to the component and "relies on the correctness of
  input validation at the component";
* ``input`` parses its numeric arguments strictly -- a random ASCII string
  where a coordinate belongs raises ``NumberFormatException`` *inside the
  tool* (counted as an exception in Table V, but handled, so no crash), and
  a parseable-but-absurd coordinate like ``input tap -8803.85 4668.17`` is
  injected and simply lands outside every window;
* ``am`` invoked with a component but neither action nor category fills in
  ``act=android.intent.action.MAIN cat=android.intent.category.LAUNCHER``.

All four behaviours are implemented here, because QGJ-UI's measured
robustness (Table V) is partly *their* robustness.
"""

from __future__ import annotations

import dataclasses
import shlex
from typing import TYPE_CHECKING, List, Optional, Tuple

from repro.android.intent import (
    CATEGORY_LAUNCHER,
    ComponentName,
    Intent,
)
from repro.android.jtypes import (
    ActivityNotFoundException,
    NumberFormatException,
    SecurityException,
    Throwable,
)

if TYPE_CHECKING:  # pragma: no cover - typing-only import
    from repro.android.device import Device

ACTION_MAIN = "android.intent.action.MAIN"

#: The package adb shell commands act as (an unprivileged shell identity).
SHELL_PACKAGE = "com.android.shell"


@dataclasses.dataclass
class ShellResult:
    """Outcome of one ``adb shell`` command."""

    exit_code: int
    output: str
    #: Exception raised *within the tool* and handled there (NumberFormat
    #: errors in ``input``, SecurityExceptions surfaced by ``am``, …).
    tool_exception: Optional[Throwable] = None
    #: True when the command resulted in an app-process crash.
    caused_crash: bool = False
    #: True when the command's payload reached an application component.
    reached_app: bool = False

    @property
    def ok(self) -> bool:
        return self.exit_code == 0


class Adb:
    """adb connected to one :class:`~repro.android.device.Device`."""

    def __init__(self, device: "Device") -> None:
        self._device = device

    def _session(self) -> None:
        """Chaos-plane entry point shared by every adb operation.

        A due session-drop fault raises :class:`AdbSessionDropped` here,
        before the command reaches the device -- the caller (QGJ's retry
        layer) reconnects and retries, exactly like the paper's operators
        nursing a flaky ``adb`` link.
        """
        plane = self._device.runtime.faults
        if plane.armed:
            plane.on_adb(self._device)

    # -- logcat -----------------------------------------------------------------
    def logcat(self) -> str:
        """``adb logcat -d``: dump the full buffer."""
        self._session()
        return self._device.logcat.dump()

    def logcat_clear(self) -> None:
        """``adb logcat -c``."""
        self._session()
        self._device.logcat.clear()

    # -- shell ------------------------------------------------------------------
    def shell(self, command: str) -> ShellResult:
        """Run one shell command line."""
        self._session()
        try:
            argv = shlex.split(command)
        except ValueError as exc:
            return ShellResult(exit_code=2, output=f"sh: syntax error: {exc}")
        if not argv:
            return ShellResult(exit_code=0, output="")
        tool, args = argv[0], argv[1:]
        if tool == "input":
            return self._input(args)
        if tool == "am":
            return self._am(args)
        if tool == "pm":
            return self._pm(args)
        if tool == "dumpsys":
            return self._dumpsys(args)
        if tool == "monkey":
            return ShellResult(
                exit_code=2,
                output="monkey: use repro.qgj.monkey.Monkey to drive event generation",
            )
        return ShellResult(exit_code=127, output=f"sh: {tool}: not found")

    # -- input ------------------------------------------------------------------
    def _input(self, args: List[str]) -> ShellResult:
        usage = (
            "Usage: input [<source>] <command> [<arg>...]\n"
            "  input text <string>\n  input keyevent <key code>\n"
            "  input tap <x> <y>\n  input swipe <x1> <y1> <x2> <y2>\n"
            "  input trackball roll <dx> <dy>"
        )
        if not args:
            return ShellResult(exit_code=1, output=usage)
        cmd, rest = args[0], args[1:]
        if cmd == "text":
            if not rest:
                return ShellResult(exit_code=1, output=usage)
            result = self._deliver_ui("text", text=" ".join(rest))
            return result
        if cmd == "keyevent":
            if len(rest) != 1:
                return ShellResult(exit_code=1, output=usage)
            parsed, error = self._parse_int(rest[0])
            if error is not None:
                return ShellResult(
                    exit_code=1,
                    output=f"Error: {error.java_str()}\n{usage}",
                    tool_exception=error,
                )
            if not 0 <= parsed <= 288:
                # KeyEvent codes outside the table are dropped at the tool.
                return ShellResult(exit_code=1, output=f"Error: Unknown keycode {parsed}")
            return self._deliver_ui("keyevent", code=parsed)
        if cmd == "tap":
            if len(rest) != 2:
                return ShellResult(exit_code=1, output=usage)
            coords, error = self._parse_floats(rest)
            if error is not None:
                return ShellResult(
                    exit_code=1,
                    output=f"Error: {error.java_str()}\n{usage}",
                    tool_exception=error,
                )
            x, y = coords
            if not self._on_screen(x, y):
                # Injected, but no window receives it.
                return ShellResult(exit_code=0, output="", reached_app=False)
            return self._deliver_ui("tap", x=x, y=y)
        if cmd == "swipe":
            if len(rest) not in (4, 5):
                return ShellResult(exit_code=1, output=usage)
            coords, error = self._parse_floats(rest[:4])
            if error is not None:
                return ShellResult(
                    exit_code=1,
                    output=f"Error: {error.java_str()}\n{usage}",
                    tool_exception=error,
                )
            if not self._on_screen(coords[0], coords[1]):
                return ShellResult(exit_code=0, output="")
            return self._deliver_ui("swipe", x1=coords[0], y1=coords[1], x2=coords[2], y2=coords[3])
        if cmd == "trackball":
            if len(rest) != 3 or rest[0] != "roll":
                return ShellResult(exit_code=1, output=usage)
            coords, error = self._parse_floats(rest[1:])
            if error is not None:
                return ShellResult(
                    exit_code=1,
                    output=f"Error: {error.java_str()}\n{usage}",
                    tool_exception=error,
                )
            return self._deliver_ui("trackball", dx=coords[0], dy=coords[1])
        return ShellResult(exit_code=1, output=f"Error: Unknown command: {cmd}\n{usage}")

    def _deliver_ui(self, kind: str, **params) -> ShellResult:
        result = self._device.activity_manager.deliver_ui_event(kind, **params)
        return ShellResult(
            exit_code=0,
            output="",
            caused_crash=result.crashed,
            reached_app=result.delivered,
            tool_exception=result.throwable,
        )

    @staticmethod
    def _parse_floats(tokens: List[str]) -> Tuple[List[float], Optional[Throwable]]:
        values: List[float] = []
        for token in tokens:
            try:
                values.append(float(token))
            except ValueError:
                return [], NumberFormatException(f'Invalid float: "{token}"')
        return values, None

    @staticmethod
    def _parse_int(token: str) -> Tuple[int, Optional[Throwable]]:
        try:
            return int(token), None
        except ValueError:
            return 0, NumberFormatException(f'Invalid int: "{token}"')

    def _on_screen(self, x: float, y: float) -> bool:
        width = getattr(self._device, "screen_width", 1440)
        height = getattr(self._device, "screen_height", 2560)
        return 0 <= x < width and 0 <= y < height

    # -- dumpsys ----------------------------------------------------------------
    def _dumpsys(self, args: List[str]) -> ShellResult:
        """``dumpsys [-l | telemetry [--prometheus]]``.

        Keeping with the repo's "observe the system the way Android exposes
        it" discipline: campaign telemetry is read back through the same
        shell surface the study reads logcat through.
        """
        from repro.telemetry import exporters

        if not args or args[0] == "-l":
            return ShellResult(
                exit_code=0, output="Currently running services:\n  telemetry"
            )
        service, rest = args[0], args[1:]
        if service != "telemetry":
            return ShellResult(exit_code=1, output=f"Can't find service: {service}")
        t = self._device.runtime.telemetry
        if not t.enabled:
            return ShellResult(
                exit_code=0,
                output=(
                    "TELEMETRY (disabled)\n"
                    "Enable with repro.telemetry.enable() or the runner's"
                    " --telemetry flag."
                ),
            )
        if "--prometheus" in rest:
            return ShellResult(exit_code=0, output=exporters.render_prometheus(t.metrics))
        return ShellResult(exit_code=0, output=exporters.render_summary(t))

    # -- am ----------------------------------------------------------------------
    def _am(self, args: List[str]) -> ShellResult:
        if not args:
            return ShellResult(exit_code=1, output="usage: am [start|startservice|force-stop] ...")
        cmd, rest = args[0], args[1:]
        if cmd in ("start", "start-activity"):
            return self._am_start(rest, service=False)
        if cmd in ("startservice", "start-service"):
            return self._am_start(rest, service=True)
        if cmd == "force-stop":
            if len(rest) != 1:
                return ShellResult(exit_code=1, output="usage: am force-stop <package>")
            self._device.activity_manager.force_stop(rest[0])
            return ShellResult(exit_code=0, output="")
        return ShellResult(exit_code=1, output=f"Error: unknown command {cmd!r}")

    def _am_start(self, args: List[str], service: bool) -> ShellResult:
        intent, error = self._parse_intent_args(args)
        if error:
            return ShellResult(exit_code=1, output=error)
        # The documented am quirk: a bare component invocation gets the
        # launcher action/category filled in.
        if intent.action is None and intent.data is None and not intent.categories:
            intent.set_action(ACTION_MAIN)
            intent.add_category(CATEGORY_LAUNCHER)
        am = self._device.activity_manager
        header = (
            f"Starting {'service' if service else 'activity'}: {intent.to_log_string()}"
        )
        try:
            if service:
                name = am.start_service(SHELL_PACKAGE, intent)
                if name is None:
                    return ShellResult(
                        exit_code=1,
                        output=f"{header}\nError: Not found; no service started.",
                    )
                return ShellResult(exit_code=0, output=header, reached_app=True)
            result = am.start_activity(SHELL_PACKAGE, intent)
            return ShellResult(
                exit_code=0,
                output=header,
                reached_app=True,
                caused_crash=result.crashed,
                tool_exception=result.throwable,
            )
        except ActivityNotFoundException as exc:
            return ShellResult(
                exit_code=1,
                output=f"{header}\nError: Activity not started, unable to resolve Intent.",
                tool_exception=exc,
            )
        except SecurityException as exc:
            return ShellResult(
                exit_code=1,
                output=f"{header}\nError: {exc.java_str()}",
                tool_exception=exc,
            )

    def _parse_intent_args(self, args: List[str]) -> Tuple[Intent, Optional[str]]:
        intent = Intent()
        i = 0
        while i < len(args):
            flag = args[i]

            def take() -> Optional[str]:
                nonlocal i
                i += 1
                return args[i] if i < len(args) else None

            if flag == "-a":
                value = take()
                if value is None:
                    return intent, "Error: No value for -a"
                # am forwards *any* action string -- no validation (the
                # behaviour the paper flags).
                intent.set_action(value)
            elif flag == "-d":
                value = take()
                if value is None:
                    return intent, "Error: No value for -d"
                intent.set_data_string(value)
            elif flag == "-c":
                value = take()
                if value is None:
                    return intent, "Error: No value for -c"
                intent.add_category(value)
            elif flag == "-t":
                value = take()
                if value is None:
                    return intent, "Error: No value for -t"
                intent.set_type(value)
            elif flag == "-n":
                value = take()
                if value is None:
                    return intent, "Error: No value for -n"
                try:
                    intent.set_component(ComponentName.parse(value))
                except ValueError:
                    return intent, f"Error: Bad component name: {value}"
            elif flag in ("--es", "--ei", "--ef", "--ez"):
                key = take()
                value = take()
                if key is None or value is None:
                    return intent, f"Error: No value for {flag}"
                if flag == "--ei":
                    parsed, err = self._parse_int(value)
                    if err is not None:
                        return intent, f"Error: {err.java_str()}"
                    intent.put_extra(key, parsed)
                elif flag == "--ef":
                    floats, err = self._parse_floats([value])
                    if err is not None:
                        return intent, f"Error: {err.java_str()}"
                    intent.put_extra(key, floats[0])
                elif flag == "--ez":
                    intent.put_extra(key, value.lower() in ("true", "1"))
                else:
                    intent.put_extra(key, value)
            elif flag.startswith("-"):
                return intent, f"Error: Unknown option: {flag}"
            else:
                # Trailing bare argument: treated as component or data URI.
                if "/" in flag and "://" not in flag:
                    try:
                        intent.set_component(ComponentName.parse(flag))
                    except ValueError:
                        intent.set_data_string(flag)
                else:
                    intent.set_data_string(flag)
            i += 1
        return intent, None

    # -- pm ----------------------------------------------------------------------
    def _pm(self, args: List[str]) -> ShellResult:
        if not args:
            return ShellResult(exit_code=1, output="usage: pm [list|grant|revoke] ...")
        cmd, rest = args[0], args[1:]
        if cmd == "list":
            return self._pm_list(rest)
        if cmd in ("grant", "revoke"):
            if len(rest) != 2:
                return ShellResult(exit_code=1, output=f"usage: pm {cmd} <package> <permission>")
            package, permission = rest
            if not self._device.packages.is_installed(package):
                return ShellResult(exit_code=1, output=f"Error: Unknown package: {package}")
            if not self._device.permissions.is_known(permission):
                # The documented pm quirk: garbage permissions are rejected
                # at the tool with an explicit message.
                exc = SecurityException(
                    f"Permission {permission} is not a changeable permission type"
                )
                return ShellResult(
                    exit_code=1,
                    output=f"Operation not allowed: {exc.java_str()}",
                    tool_exception=exc,
                )
            if cmd == "grant":
                self._device.permissions.grant(package, permission)
            else:
                self._device.permissions.revoke(package, permission)
            return ShellResult(exit_code=0, output="")
        return ShellResult(exit_code=1, output=f"Error: unknown command {cmd!r}")

    def _pm_list(self, rest: List[str]) -> ShellResult:
        if rest and rest[0] == "packages":
            lines = [
                f"package:{p.package}" for p in self._device.packages.installed_packages()
            ]
            return ShellResult(exit_code=0, output="\n".join(sorted(lines)))
        if rest and rest[0] == "permissions":
            lines = [f"permission:{name}" for name in self._device.permissions.all_names()]
            return ShellResult(exit_code=0, output="\n".join(sorted(lines)))
        return ShellResult(exit_code=1, output="usage: pm list [packages|permissions]")
