"""Per-application ``Context``.

Every component runs with a context that scopes framework calls to its own
package: starting other components, looking up system services, checking
permissions, and writing to the log.  The behaviour models in
:mod:`repro.apps` use it to reach the sensor manager, the Google Fit
service, and the Wear APIs -- the dependency edges along which the paper
observed error propagation.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Optional

from repro.android.intent import ComponentName, Intent
from repro.android.log import Logcat
from repro.android.permissions import PERMISSION_GRANTED

if TYPE_CHECKING:  # pragma: no cover - typing-only imports
    from repro.android.activity_manager import ActivityManager
    from repro.android.device import Device


class Context:
    """An app-scoped view of the device."""

    def __init__(self, package: str, device: "Device") -> None:
        self.package = package
        self._device = device

    # -- framework entry points ---------------------------------------------------
    @property
    def activity_manager(self) -> "ActivityManager":
        return self._device.activity_manager

    @property
    def logcat(self) -> Logcat:
        return self._device.logcat

    def start_activity(self, intent: Intent) -> None:
        """Start an activity on behalf of this package.

        Raises :class:`~repro.android.jtypes.ActivityNotFoundException` or
        :class:`~repro.android.jtypes.SecurityException` back to the caller,
        exactly like ``Context.startActivity``.
        """
        self._device.activity_manager.start_activity(self.package, intent)

    def start_service(self, intent: Intent) -> Optional[ComponentName]:
        return self._device.activity_manager.start_service(self.package, intent)

    def bind_service(self, intent: Intent) -> bool:
        return self._device.activity_manager.bind_service(self.package, intent)

    def send_broadcast(self, intent: Intent) -> int:
        return self._device.activity_manager.send_broadcast(self.package, intent)

    def get_system_service(self, name: str) -> Any:
        """Look up a system service (``sensor``, ``ambient``, ``fit``, …)."""
        return self._device.get_system_service(name, self.package)

    def check_self_permission(self, permission: str) -> int:
        return self._device.permissions.check_permission(self.package, permission)

    def has_permission(self, permission: str) -> bool:
        return self.check_self_permission(permission) == PERMISSION_GRANTED

    # -- logging helpers (Log.i / Log.w from app code) ----------------------------
    def log_i(self, tag: str, message: str) -> None:
        pid = self._pid()
        self._device.logcat.i(tag, message, pid=pid)

    def log_w(self, tag: str, message: str) -> None:
        pid = self._pid()
        self._device.logcat.w(tag, message, pid=pid)

    def log_e(self, tag: str, message: str) -> None:
        pid = self._pid()
        self._device.logcat.e(tag, message, pid=pid)

    def _pid(self) -> int:
        proc = self._device.processes.get(self.package)
        return proc.pid if proc else 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Context {self.package}>"
