"""Process and main-thread model.

Each installed app runs (when started) in a *process* with a single main
thread driven by a looper -- Android's execution model.  The pieces of that
model the fuzz study depends on are:

* component callbacks run on the main thread, one at a time, in order;
* an uncaught throwable on the main thread kills the whole process
  (``FATAL EXCEPTION: main``) -- that is the study's *Crash* manifestation;
* a callback that blocks past the ANR timeout triggers an
  Application-Not-Responding report -- the *Hang* manifestation;
* when a process dies, binder calls into it fail with
  ``DeadObjectException`` in its clients -- one of the error-propagation
  channels behind the observed reboots.

Time is virtual (:mod:`repro.android.clock`): a callback declares how long it
*would* have run, and the looper advances the clock by that much.
"""

from __future__ import annotations

import dataclasses
import enum
import itertools
from collections import deque
from typing import Callable, Deque, List, Optional

from repro.android.clock import Clock
from repro.android.jtypes import Throwable
from repro.android.runtime import RuntimeContext

#: Android's foreground-dispatch ANR window.
DEFAULT_ANR_TIMEOUT_MS = 5000.0

#: First pid handed out by a fresh device (Android's app-pid floor, roughly).
FIRST_APP_PID = 1000

#: Fallback allocator for records constructed without a table (tests build
#: bare ``ProcessRecord`` objects); never used by device-managed processes.
_DETACHED_PIDS = itertools.count(900_000)


class ProcessState(enum.Enum):
    NOT_RUNNING = "not_running"
    RUNNING = "running"
    CRASHED = "crashed"
    KILLED = "killed"


@dataclasses.dataclass
class MainThreadTask:
    """One unit of main-thread work (a lifecycle callback, usually)."""

    description: str
    run: Callable[[], None]
    #: Virtual execution cost.  Behaviour models use large values to model a
    #: handler that blocks (leading to ANR).
    duration_ms: float = 1.0


@dataclasses.dataclass
class CrashInfo:
    """Post-mortem record of a process crash."""

    time_ms: float
    throwable: Throwable
    task_description: str


@dataclasses.dataclass
class AnrInfo:
    """Post-mortem record of an ANR."""

    time_ms: float
    task_description: str
    blocked_for_ms: float


class ProcessRecord:
    """A running (or formerly running) app or system process."""

    def __init__(
        self,
        name: str,
        package: str,
        clock: Clock,
        is_system: bool = False,
        is_native: bool = False,
        anr_timeout_ms: float = DEFAULT_ANR_TIMEOUT_MS,
        pid: Optional[int] = None,
        runtime: Optional[RuntimeContext] = None,
    ) -> None:
        self.name = name
        self.package = package
        self.pid = pid if pid is not None else next(_DETACHED_PIDS)
        self.runtime = runtime if runtime is not None else RuntimeContext()
        self.clock = clock
        self.is_system = is_system
        self.is_native = is_native
        self.anr_timeout_ms = anr_timeout_ms
        self.state = ProcessState.RUNNING
        self.start_time_ms = clock.now_ms()
        self.crashes: List[CrashInfo] = []
        self.anrs: List[AnrInfo] = []
        self._queue: Deque[MainThreadTask] = deque()
        #: Observers notified when this process dies (binder death links).
        self._death_recipients: List[Callable[["ProcessRecord"], None]] = []

    # -- liveness ---------------------------------------------------------------
    @property
    def alive(self) -> bool:
        return self.state == ProcessState.RUNNING

    def link_to_death(self, recipient: Callable[["ProcessRecord"], None]) -> None:
        """Register a binder death recipient."""
        self._death_recipients.append(recipient)

    def _notify_death(self) -> None:
        recipients, self._death_recipients = self._death_recipients, []
        for recipient in recipients:
            recipient(self)

    def kill(self, reason: str = "killed") -> None:
        """Forcibly terminate (``am force-stop`` / lmkd / crash cleanup)."""
        if not self.alive:
            return
        self.state = ProcessState.KILLED
        self._queue.clear()
        self._notify_death()

    # -- main-thread execution ------------------------------------------------------
    def post(self, task: MainThreadTask) -> None:
        """Enqueue *task* on the main thread."""
        if not self.alive:
            raise RuntimeError(f"posting to dead process {self.name}")
        self._queue.append(task)

    def run_main_task(self, task: MainThreadTask) -> Optional[Throwable]:
        """Execute one task synchronously on the (virtual) main thread.

        Returns the uncaught :class:`Throwable` if the task threw, after
        recording the crash and killing the process; returns ``None`` on
        success.  ANR accounting is done by the caller (the activity
        manager), which knows the dispatch type and its timeout.
        """
        if not self.alive:
            raise RuntimeError(f"running task on dead process {self.name}")
        self.clock.sleep(task.duration_ms)
        try:
            task.run()
        except Throwable as thrown:
            self.state = ProcessState.CRASHED
            self.crashes.append(
                CrashInfo(
                    time_ms=self.clock.now_ms(),
                    throwable=thrown,
                    task_description=task.description,
                )
            )
            self._queue.clear()
            self._notify_death()
            return thrown
        return None

    def drain_queue(self) -> Optional[Throwable]:
        """Run queued tasks until empty or the process dies."""
        while self.alive and self._queue:
            task = self._queue.popleft()
            thrown = self.run_main_task(task)
            if thrown is not None:
                return thrown
        return None

    def record_anr(self, task_description: str, blocked_for_ms: float) -> AnrInfo:
        info = AnrInfo(
            time_ms=self.clock.now_ms(),
            task_description=task_description,
            blocked_for_ms=blocked_for_ms,
        )
        self.anrs.append(info)
        return info

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ProcessRecord {self.name} pid={self.pid} {self.state.value}>"


class ProcessTable:
    """The device's table of live processes, keyed by process name.

    *logcat*, when provided, receives the ``lowmemorykiller`` lines emitted
    for chaos-plane lmkd kills (the analysis parser ignores the tag, so the
    study's classification never keys on them).
    """

    def __init__(self, clock: Clock, logcat=None, runtime: Optional[RuntimeContext] = None) -> None:
        self._clock = clock
        self._logcat = logcat
        self.runtime = runtime if runtime is not None else RuntimeContext()
        self._processes: dict[str, ProcessRecord] = {}
        self.total_started = 0
        self.lmkd_kills = 0
        #: Per-device pid watermark: each device hands out its own pid space,
        #: so pids are deterministic per run and never leak across devices
        #: (or across tests) the way the old class-level counter did.
        self._next_pid = FIRST_APP_PID

    @property
    def clock(self) -> Clock:
        return self._clock

    def allocate_pid(self) -> int:
        pid = self._next_pid
        self._next_pid += 1
        return pid

    def get(self, name: str) -> Optional[ProcessRecord]:
        proc = self._processes.get(name)
        if proc is not None and not proc.alive:
            return None
        return proc

    def get_or_start(
        self,
        name: str,
        package: str,
        is_system: bool = False,
        is_native: bool = False,
    ) -> ProcessRecord:
        plane = self.runtime.faults
        if plane.armed:
            # lmkd runs before the lookup: a due low-memory kill may reap
            # the very process being asked for, which then restarts cold --
            # exactly Android's behaviour under memory pressure.
            plane.on_process_table(self)
        proc = self.get(name)
        if proc is None:
            proc = ProcessRecord(
                name=name,
                package=package,
                clock=self._clock,
                is_system=is_system,
                is_native=is_native,
                pid=self.allocate_pid(),
                runtime=self.runtime,
            )
            self._processes[name] = proc
            self.total_started += 1
        return proc

    def lmkd_kill(self, victim: ProcessRecord) -> None:
        """Reap *victim* the way the low-memory killer daemon would."""
        if not victim.alive:
            return
        self.lmkd_kills += 1
        if self._logcat is not None:
            self._logcat.i(
                "lowmemorykiller",
                f"Killing '{victim.name}' ({victim.pid}), adj 900, to free memory",
            )
        victim.kill("lmkd")

    def kill_package(self, package: str, reason: str = "force-stop") -> int:
        """Kill every process belonging to *package*; returns count killed."""
        killed = 0
        for proc in list(self._processes.values()):
            if proc.package == package and proc.alive:
                proc.kill(reason)
                killed += 1
        return killed

    def live_processes(self) -> List[ProcessRecord]:
        return [p for p in self._processes.values() if p.alive]

    def all_processes(self) -> List[ProcessRecord]:
        return list(self._processes.values())

    def clear(self) -> None:
        """Drop every process record (used across a simulated reboot)."""
        for proc in self._processes.values():
            if proc.alive:
                proc.kill("reboot")
        self._processes.clear()
