"""Per-device-tree runtime context: scoped fault and telemetry handles.

Historically the chaos plane (:mod:`repro.faults`) and the telemetry plane
(:mod:`repro.telemetry`) were process-wide module globals fetched at every
hook site.  One process, one device pair, one plane -- fine for a serial
study, fatal for a device farm: parallel shards each need their *own*
fault-plan execution stream and their own metrics registry, or schedules
and counters smear across shards and determinism dies.

:class:`RuntimeContext` is the seam.  Every object in one device tree
(device, logcat, process table, process records, binders, activity manager)
shares a single context, and each hook site asks the context -- not the
module -- for its plane:

* an **unbound** context falls back to the process-wide handle
  (``faults.get()`` / ``telemetry.get()``), so directly-constructed devices
  behave exactly as before and ``faults.session(...)`` keeps working;
* a **bound** context (what :mod:`repro.farm` builds per shard) pins the
  device tree to a scoped :class:`~repro.faults.plane.FaultPlane` and
  :class:`~repro.telemetry.Telemetry`, regardless of process-wide state.

Contexts pickle *empty*: the fault plane keys execution state by
``id(clock)`` (stale after unpickle) and a live telemetry handle may hold
unpicklable heartbeat listeners, so a checkpoint snapshot never carries
either.  Whoever restores the snapshot rebinds explicitly (see
``repro.farm.shard``); an unrestored context simply falls back to the
process-wide handles.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - typing-only imports
    from repro.faults.plane import FaultPlane
    from repro.telemetry import Telemetry

# The process-wide getters, resolved lazily (importing repro.faults or
# repro.telemetry at module scope would be circular) and then cached: the
# unbound fallback runs on every hook site of an unscoped device tree, and
# a per-call ``from repro import ...`` costs more than the hook itself.
_faults_get = None
_telemetry_get = None


def _resolve_getters() -> None:
    global _faults_get, _telemetry_get
    from repro import faults, telemetry

    _faults_get = faults.get
    _telemetry_get = telemetry.get


class RuntimeContext:
    """Scoped (or process-global-falling-back) fault/telemetry handles."""

    def __init__(self, fault_plane=None, telemetry_handle=None) -> None:
        self._fault_plane = fault_plane
        self._telemetry = telemetry_handle

    # -- resolution --------------------------------------------------------------
    @property
    def faults(self):
        """The fault plane this device tree answers to."""
        if self._fault_plane is not None:
            return self._fault_plane
        if _faults_get is None:
            _resolve_getters()
        return _faults_get()

    @property
    def telemetry(self):
        """The telemetry handle this device tree reports to."""
        if self._telemetry is not None:
            return self._telemetry
        if _telemetry_get is None:
            _resolve_getters()
        return _telemetry_get()

    # -- binding -----------------------------------------------------------------
    def bind_faults(self, plane: Optional["FaultPlane"]) -> None:
        """Pin (or with ``None`` unpin) the fault plane for this tree."""
        self._fault_plane = plane

    def bind_telemetry(self, handle: Optional["Telemetry"]) -> None:
        """Pin (or with ``None`` unpin) the telemetry handle for this tree."""
        self._telemetry = handle

    @property
    def bound(self) -> bool:
        return self._fault_plane is not None or self._telemetry is not None

    # -- pickling ----------------------------------------------------------------
    def __getstate__(self) -> dict:
        # Handles never survive a pickle: plane execution state is keyed by
        # id(clock) and telemetry may hold unpicklable listeners.  Shared
        # identity across one device tree *is* preserved (pickle memo), so a
        # restored tree can be rebound through any one reference.
        return {}

    def __setstate__(self, state: dict) -> None:
        self._fault_plane = None
        self._telemetry = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        bound = []
        if self._fault_plane is not None:
            bound.append("faults")
        if self._telemetry is not None:
            bound.append("telemetry")
        return f"<RuntimeContext bound={'+'.join(bound) or 'none'}>"
