"""Package management: installed apps, their manifests, and resolution.

QGJ-Master's first step (① in the paper's Fig. 1a) is *retrieving the list
of components* -- activities and services -- registered on the wearable.
That inventory, the explicit-component resolution used for every injection,
and the launcher lookup used by QGJ-UI all live here.

The package manager also underpins Table II: the study's population of 46
wear apps (2 built-in + 11 third-party health/fitness, 9 + 24 other) with
514 activities and 398 services, which :mod:`repro.apps.catalog` installs.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Dict, Iterable, List, Optional

from repro.android.component import ComponentInfo, ComponentKind
from repro.android.intent import ComponentName, Intent
from repro.android.permissions import PermissionManager


class AppCategory(enum.Enum):
    """The paper's primary app categorisation."""

    HEALTH_FITNESS = "Health/Fitness"
    OTHER = "Not Health/Fitness"


class AppOrigin(enum.Enum):
    """The paper's orthogonal classification."""

    BUILT_IN = "Built-in"
    THIRD_PARTY = "Third Party"


@dataclasses.dataclass
class PackageInfo:
    """One installed application package."""

    package: str
    label: str
    category: AppCategory
    origin: AppOrigin
    version_name: str = "1.0"
    downloads: int = 0
    components: List[ComponentInfo] = dataclasses.field(default_factory=list)
    requested_permissions: List[str] = dataclasses.field(default_factory=list)
    uses_google_fit: bool = False
    uses_sensor_manager: bool = False
    targets_wear2: bool = True
    #: Vendor-specific extension (e.g. Motorola's); absent on the emulator.
    vendor: bool = False

    def activities(self) -> List[ComponentInfo]:
        return [c for c in self.components if c.kind == ComponentKind.ACTIVITY]

    def services(self) -> List[ComponentInfo]:
        return [c for c in self.components if c.kind == ComponentKind.SERVICE]

    def receivers(self) -> List[ComponentInfo]:
        return [c for c in self.components if c.kind == ComponentKind.RECEIVER]

    def component(self, class_name: str) -> Optional[ComponentInfo]:
        for c in self.components:
            if c.name.class_name == class_name:
                return c
        return None

    def launcher_activity(self) -> Optional[ComponentInfo]:
        for c in self.activities():
            if c.is_launcher():
                return c
        return None

    @property
    def is_built_in(self) -> bool:
        return self.origin == AppOrigin.BUILT_IN


class PackageManager:
    """The device's package registry."""

    def __init__(self, permissions: PermissionManager) -> None:
        self._packages: Dict[str, PackageInfo] = {}
        self._by_component: Dict[str, ComponentInfo] = {}
        self.permissions = permissions
        #: Back-reference for the chaos plane's resolution hook; ``None``
        #: for a manager constructed outside a device (unit tests).
        self._device = None

    def attach_device(self, device) -> None:
        self._device = device

    # -- installation ---------------------------------------------------------
    def install(self, package: PackageInfo, grant_requested: bool = True) -> None:
        """Install *package*; built-in packages become privileged.

        By default requested (known) permissions are granted, matching the
        paper's setup step of completing "any initial setup required by the
        apps" before the campaigns.
        """
        if package.package in self._packages:
            raise ValueError(f"package already installed: {package.package}")
        seen = set()
        for comp in package.components:
            if comp.name.package != package.package:
                raise ValueError(
                    f"component {comp.name} does not belong to {package.package}"
                )
            flat = comp.name.flatten_to_string()
            if flat in seen:
                raise ValueError(f"duplicate component in manifest: {flat}")
            seen.add(flat)
        self._packages[package.package] = package
        for comp in package.components:
            self._by_component[comp.name.flatten_to_string()] = comp
        if package.is_built_in:
            self.permissions.mark_privileged(package.package)
        if grant_requested:
            for perm in package.requested_permissions:
                if self.permissions.is_known(perm):
                    self.permissions.grant(package.package, perm)

    def uninstall(self, package_name: str) -> None:
        package = self._packages.pop(package_name, None)
        if package is None:
            raise ValueError(f"package not installed: {package_name}")
        for comp in package.components:
            self._by_component.pop(comp.name.flatten_to_string(), None)

    # -- queries ---------------------------------------------------------------
    def is_installed(self, package_name: str) -> bool:
        return package_name in self._packages

    def get_package(self, package_name: str) -> Optional[PackageInfo]:
        return self._packages.get(package_name)

    def installed_packages(self) -> List[PackageInfo]:
        return list(self._packages.values())

    def packages_in_category(self, category: AppCategory) -> List[PackageInfo]:
        return [p for p in self._packages.values() if p.category == category]

    def packages_with_origin(self, origin: AppOrigin) -> List[PackageInfo]:
        return [p for p in self._packages.values() if p.origin == origin]

    def resolve_component(self, name: ComponentName) -> Optional[ComponentInfo]:
        """Explicit resolution: the exact component, or ``None``.

        The fault plane's resolution hook fires here on outermost
        dispatches only: resolution performed inside a running lifecycle
        stays in-process, exactly like the activity manager's transport
        boundary.
        """
        device = self._device
        if device is not None:
            plane = device.runtime.faults
            if plane.armed and device.activity_manager.outermost_dispatch:
                plane.on_resolve(device)
        return self._by_component.get(name.flatten_to_string())

    def all_components(
        self, kinds: Iterable[ComponentKind] = (ComponentKind.ACTIVITY, ComponentKind.SERVICE)
    ) -> List[ComponentInfo]:
        wanted = set(kinds)
        return [c for c in self._by_component.values() if c.kind in wanted]

    def components_of(self, package_name: str, kind: Optional[ComponentKind] = None) -> List[ComponentInfo]:
        package = self._packages.get(package_name)
        if package is None:
            return []
        if kind is None:
            return list(package.components)
        return [c for c in package.components if c.kind == kind]

    def query_intent_activities(self, intent: Intent) -> List[ComponentInfo]:
        """Implicit resolution against activity intent filters."""
        matches = []
        for comp in self._by_component.values():
            if comp.kind != ComponentKind.ACTIVITY or not comp.exported:
                continue
            if any(f.matches(intent) for f in comp.intent_filters):
                matches.append(comp)
        return sorted(matches, key=lambda c: c.name.flatten_to_string())

    def launcher_activities(self) -> List[ComponentInfo]:
        return sorted(
            (
                comp
                for package in self._packages.values()
                for comp in package.activities()
                if comp.is_launcher()
            ),
            key=lambda c: c.name.flatten_to_string(),
        )

    # -- stats for Table II -----------------------------------------------------
    def population_stats(self) -> Dict[str, Dict[str, int]]:
        """Counts of apps/activities/services per (category, origin) cell."""
        stats: Dict[str, Dict[str, int]] = {}
        for package in self._packages.values():
            key = f"{package.category.value}|{package.origin.value}"
            cell = stats.setdefault(key, {"apps": 0, "activities": 0, "services": 0})
            cell["apps"] += 1
            cell["activities"] += len(package.activities())
            cell["services"] += len(package.services())
        return stats
