"""Intents, component names, and intent-filter matching.

The intent is the paper's unit of injection: QGJ builds ~1.5M of them and
fires them at Activity and Service components.  This module models the parts
of ``android.content.Intent`` the study exercises:

* the five basic fields -- action, data URI, category, MIME type, component --
  plus typed extras and launch flags;
* *explicit* resolution (``cmp=`` names the target class), which is the only
  kind QGJ sends;
* *implicit* intent-filter matching (action / category / data tests), which
  the package manager uses for launcher lookups and which QGJ-UI's monkey
  relies on;
* the exact ``Intent { act=… dat=… cmp=… (has extras) }`` rendering used in
  Android logs, because our analysis pipeline reads interactions back out of
  log text.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.android.uri import Uri

# Categories used throughout the framework.
CATEGORY_DEFAULT = "android.intent.category.DEFAULT"
CATEGORY_LAUNCHER = "android.intent.category.LAUNCHER"
CATEGORY_HOME = "android.intent.category.HOME"
CATEGORY_BROWSABLE = "android.intent.category.BROWSABLE"

# Flags relevant to the simulation.
FLAG_ACTIVITY_NEW_TASK = 0x10000000
FLAG_ACTIVITY_CLEAR_TOP = 0x04000000
FLAG_INCLUDE_STOPPED_PACKAGES = 0x00000020


@dataclasses.dataclass(frozen=True, order=True)
class ComponentName:
    """``package/class`` pair identifying one app component."""

    package: str
    class_name: str

    @staticmethod
    def parse(flat: str) -> "ComponentName":
        """Parse ``com.foo/.Bar`` or ``com.foo/com.foo.Bar``."""
        if "/" not in flat:
            raise ValueError(f"not a component name: {flat!r}")
        package, _, cls = flat.partition("/")
        if not package or not cls:
            raise ValueError(f"not a component name: {flat!r}")
        if cls.startswith("."):
            cls = package + cls
        return ComponentName(package=package, class_name=cls)

    def flatten_to_short_string(self) -> str:
        if self.class_name.startswith(self.package + "."):
            return f"{self.package}/{self.class_name[len(self.package):]}"
        return f"{self.package}/{self.class_name}"

    def flatten_to_string(self) -> str:
        return f"{self.package}/{self.class_name}"

    @property
    def simple_class(self) -> str:
        return self.class_name.rsplit(".", 1)[-1]

    def __str__(self) -> str:
        return self.flatten_to_string()


#: Extra value types the simulator recognises.  Campaign D puts "random
#: values" into extras; the behaviour models care about the type tags because
#: type confusion is one of the failure modes (ClassCastException).
ExtraValue = Any


class Intent:
    """A mutable intent, built fluently like on Android.

    ``Intent("android.intent.action.VIEW").set_data_string("tel:123")``
    """

    def __init__(
        self,
        action: Optional[str] = None,
        data: Optional[str] = None,
        component: Optional[ComponentName] = None,
    ) -> None:
        self.action = action
        self._data: Optional[Uri] = Uri.parse(data) if data is not None else None
        self.component = component
        self.categories: List[str] = []
        self.mime_type: Optional[str] = None
        self.extras: Dict[str, ExtraValue] = {}
        self.flags: int = 0

    # -- builders ---------------------------------------------------------------
    def set_action(self, action: Optional[str]) -> "Intent":
        self.action = action
        return self

    def set_data(self, uri: Optional[Uri]) -> "Intent":
        self._data = uri
        return self

    def set_data_string(self, text: Optional[str]) -> "Intent":
        self._data = Uri.parse(text) if text is not None else None
        return self

    def set_component(self, component: Optional[ComponentName]) -> "Intent":
        self.component = component
        return self

    def set_class_name(self, package: str, class_name: str) -> "Intent":
        return self.set_component(ComponentName(package, class_name))

    def add_category(self, category: str) -> "Intent":
        if category not in self.categories:
            self.categories.append(category)
        return self

    def set_type(self, mime: Optional[str]) -> "Intent":
        self.mime_type = mime
        return self

    def put_extra(self, key: str, value: ExtraValue) -> "Intent":
        self.extras[key] = value
        return self

    def put_extras(self, mapping: Mapping[str, ExtraValue]) -> "Intent":
        self.extras.update(mapping)
        return self

    def add_flags(self, flags: int) -> "Intent":
        self.flags |= flags
        return self

    # -- accessors -------------------------------------------------------------
    @property
    def data(self) -> Optional[Uri]:
        return self._data

    @property
    def data_string(self) -> Optional[str]:
        return None if self._data is None else str(self._data)

    @property
    def scheme(self) -> Optional[str]:
        return None if self._data is None else self._data.scheme

    def get_extra(self, key: str, default: ExtraValue = None) -> ExtraValue:
        return self.extras.get(key, default)

    def has_extra(self, key: str) -> bool:
        return key in self.extras

    def is_explicit(self) -> bool:
        return self.component is not None

    def copy(self) -> "Intent":
        clone = Intent(self.action)
        clone._data = self._data
        clone.component = self.component
        clone.categories = list(self.categories)
        clone.mime_type = self.mime_type
        clone.extras = dict(self.extras)
        clone.flags = self.flags
        return clone

    # -- rendering ---------------------------------------------------------------
    def to_log_string(self) -> str:
        """Render like ``Intent.toString()``; the analysis parses this form."""
        parts: List[str] = []
        if self.action is not None:
            parts.append(f"act={self.action}")
        if self.categories:
            parts.append("cat=[" + ",".join(self.categories) + "]")
        if self._data is not None:
            parts.append(f"dat={self._data}")
        if self.mime_type is not None:
            parts.append(f"typ={self.mime_type}")
        if self.flags:
            parts.append(f"flg=0x{self.flags:x}")
        if self.component is not None:
            parts.append(f"cmp={self.component.flatten_to_short_string()}")
        if self.extras:
            parts.append("(has extras)")
        return "Intent { " + " ".join(parts) + " }"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return self.to_log_string()

    # -- feature extraction for behaviour models -----------------------------------
    def signature(self) -> Tuple:
        """A hashable digest of the fields that behaviour models key on."""
        return (
            self.action,
            self.data_string,
            self.mime_type,
            tuple(sorted(self.categories)),
            tuple(sorted((k, type(v).__name__) for k, v in self.extras.items())),
            None if self.component is None else self.component.flatten_to_string(),
        )


class IntentFilter:
    """Action/category/data tests, matching Android's resolution rules.

    Only the subset the study needs is implemented: action membership,
    category subset test, and data matching on scheme and MIME type.
    """

    def __init__(
        self,
        actions: Iterable[str] = (),
        categories: Iterable[str] = (),
        schemes: Iterable[str] = (),
        mime_types: Iterable[str] = (),
    ) -> None:
        self.actions: List[str] = list(actions)
        self.categories: List[str] = list(categories)
        self.schemes: List[str] = list(schemes)
        self.mime_types: List[str] = list(mime_types)

    # Match result codes (subset of Android's).
    NO_MATCH_ACTION = -3
    NO_MATCH_CATEGORY = -4
    NO_MATCH_DATA = -2
    MATCH_CATEGORY_EMPTY = 0x100000
    MATCH_CATEGORY_SCHEME = 0x200000
    MATCH_CATEGORY_TYPE = 0x600000

    def match_action(self, action: Optional[str]) -> bool:
        if action is None:
            # Android: a null action matches any filter that has >=1 action.
            return bool(self.actions)
        return action in self.actions

    def match_categories(self, categories: Sequence[str]) -> bool:
        return all(c in self.categories for c in categories)

    def _match_mime(self, mime: str) -> bool:
        for declared in self.mime_types:
            if declared == mime:
                return True
            if declared.endswith("/*") and mime.split("/", 1)[0] == declared.split("/", 1)[0]:
                return True
            if declared == "*/*":
                return True
        return False

    def match_data(self, data: Optional[Uri], mime: Optional[str]) -> int:
        if not self.schemes and not self.mime_types:
            if data is None and mime is None:
                return self.MATCH_CATEGORY_EMPTY
            return self.NO_MATCH_DATA
        if self.schemes:
            if data is None or data.scheme not in self.schemes:
                return self.NO_MATCH_DATA
            if not self.mime_types:
                return self.MATCH_CATEGORY_SCHEME
        if self.mime_types:
            if mime is None or not self._match_mime(mime):
                return self.NO_MATCH_DATA
            return self.MATCH_CATEGORY_TYPE
        return self.MATCH_CATEGORY_SCHEME

    def match(self, intent: Intent) -> int:
        """Full filter match; >= 0 means success (higher is more specific)."""
        if not self.match_action(intent.action):
            return self.NO_MATCH_ACTION
        if not self.match_categories(intent.categories):
            return self.NO_MATCH_CATEGORY
        return self.match_data(intent.data, intent.mime_type)

    def matches(self, intent: Intent) -> bool:
        return self.match(intent) >= 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"IntentFilter(actions={self.actions!r}, categories={self.categories!r}, "
            f"schemes={self.schemes!r}, mime_types={self.mime_types!r})"
        )


def launcher_filter() -> IntentFilter:
    """The filter every launcher activity declares."""
    return IntentFilter(
        actions=["android.intent.action.MAIN"],
        categories=[CATEGORY_LAUNCHER, CATEGORY_DEFAULT],
    )
