"""The device log (``logcat``).

Everything the DSN'18 study measures is measured *through logs*: the authors
ran fuzz campaigns, pulled >2 GB of ``logcat`` output over ``adb``, and then
classified component behaviour by grepping for ``FATAL EXCEPTION: main``,
ANR entries, ``SecurityException`` permission denials, and reboot markers.

To keep this reproduction honest, the simulator emits the same log grammar
and the analysis package parses it back out of plain text -- results never
take an in-memory shortcut around the log.  The grammar implemented here is
the Android ``threadtime`` format::

    06-20 10:01:22.345  1234  1234 E AndroidRuntime: FATAL EXCEPTION: main
    06-20 10:01:22.345  1234  1234 E AndroidRuntime: Process: com.example.fit, PID: 1234
    06-20 10:01:22.346  1234  1234 E AndroidRuntime: java.lang.NullPointerException: ...
    06-20 10:01:22.346  1234  1234 E AndroidRuntime: \tat com.example.fit.MainActivity.onCreate(MainActivity.java:42)
"""

from __future__ import annotations

import dataclasses
import enum
from collections import deque
from typing import Deque, Iterable, Iterator, List, Optional

from repro.android.clock import Clock
from repro.android.jtypes import NativeSignal, Throwable
from repro.android.runtime import RuntimeContext
from repro.telemetry.metrics import LOGCAT_BUFFERED, LOGCAT_DROPPED, LOGCAT_WRITTEN
from repro.telemetry.record import CounterSite, GaugeSite

#: Logcat is written on every dispatch, denial, and crash block -- the
#: second-hottest instrumented path after injection counting.  Sites keep
#: each write to a few batched handle operations.
_WRITTEN_SITE = CounterSite(LOGCAT_WRITTEN, "Log records appended to logcat.")
_DROPPED_SITE = CounterSite(
    LOGCAT_DROPPED, "Log records evicted by the logcat ring buffer."
)
_BUFFERED_SITE = GaugeSite(
    LOGCAT_BUFFERED, "Log records currently held in the logcat ring buffer."
)


class Level(enum.Enum):
    """Logcat priority levels."""

    VERBOSE = "V"
    DEBUG = "D"
    INFO = "I"
    WARN = "W"
    ERROR = "E"
    FATAL = "F"

    def __str__(self) -> str:
        return self.value


@dataclasses.dataclass(frozen=True)
class LogRecord:
    """One logcat line (pre-rendered message, single line)."""

    time_ms: float
    pid: int
    tid: int
    level: Level
    tag: str
    message: str

    def render(self) -> str:
        return (
            f"{_format_time(self.time_ms)} {self.pid:5d} {self.tid:5d} "
            f"{self.level} {self.tag}: {self.message}"
        )


def _format_time(time_ms: float) -> str:
    """Render virtual milliseconds-since-boot as a logcat timestamp.

    The virtual epoch is pinned to ``06-20 10:00:00.000`` (an arbitrary but
    fixed date) so output is deterministic.
    """
    total_ms = int(time_ms)
    ms = total_ms % 1000
    total_s = total_ms // 1000
    sec = total_s % 60
    total_m = total_s // 60
    minute = total_m % 60
    total_h = total_m // 60
    hour = (10 + total_h) % 24
    day = 20 + ((10 + total_h) // 24)
    return f"06-{day:02d} {hour:02d}:{minute:02d}:{sec:02d}.{ms:03d}"


# Tags the simulator uses for framework events; the parser keys on these.
TAG_RUNTIME = "AndroidRuntime"
TAG_ACTIVITY_MANAGER = "ActivityManager"
TAG_SYSTEM = "SystemServer"
TAG_LIBC = "libc"
TAG_DEBUGGERD = "DEBUG"
TAG_WATCHDOG = "Watchdog"
TAG_BOOT = "boot"
TAG_SENSOR = "SensorService"


class Logcat:
    """A device-wide ring buffer of :class:`LogRecord`.

    Parameters
    ----------
    clock:
        The device clock; records are stamped with its virtual time.
    capacity:
        Maximum records retained (oldest dropped first), like the kernel log
        ring buffer.  ``None`` keeps everything -- fine at quick scale, and
        experiments set an explicit cap for paper-scale runs.
    """

    def __init__(
        self,
        clock: Clock,
        capacity: Optional[int] = None,
        runtime: Optional[RuntimeContext] = None,
    ) -> None:
        self._clock = clock
        self.runtime = runtime if runtime is not None else RuntimeContext()
        self._records: Deque[LogRecord] = deque(maxlen=capacity)
        self._dropped = 0
        # Bound telemetry handles, re-resolved when the registry changes
        # identity (a new session or a shard-local handle); write() is on
        # the path of every simulated log line, so the steady-state cost
        # must stay at one pointer comparison.
        self._bound_registry = None
        self._written_handle = None
        self._buffered_handle = None

    # -- raw writes ---------------------------------------------------------------
    def write(self, level: Level, tag: str, message: str, pid: int = 0, tid: Optional[int] = None) -> None:
        """Append one record per line of *message*."""
        if tid is None:
            tid = pid
        t = self.runtime.telemetry
        profiler = t.profiler
        prof_on = profiler.enabled
        if prof_on:
            profiler.enter("logcat")
        maxlen = self._records.maxlen
        written = 0
        dropped_now = 0
        for line in message.split("\n"):
            # Eviction is decided per appended line: a multi-line message can
            # cross the capacity boundary (or fill the ring mid-call).
            if maxlen is not None and len(self._records) == maxlen:
                dropped_now += 1
            self._records.append(
                LogRecord(
                    time_ms=self._clock.now_ms(),
                    pid=pid,
                    tid=tid,
                    level=level,
                    tag=tag,
                    message=line,
                )
            )
            written += 1
        self._dropped += dropped_now
        if t.enabled:
            metrics = t.metrics
            if metrics is not self._bound_registry:
                self._written_handle = _WRITTEN_SITE.bind(metrics)
                self._buffered_handle = _BUFFERED_SITE.bind(metrics)
                self._bound_registry = metrics
            # Direct slot stores -- BoundCounter.inc / BoundGauge.set with
            # the call overhead shaved off the per-log-line path.
            self._written_handle.pending += written
            if dropped_now:
                _DROPPED_SITE.bind(metrics).inc(dropped_now)
            buffered = self._buffered_handle
            buffered.value = len(self._records)
            buffered.dirty = True
        if prof_on:
            profiler.exit()

    def v(self, tag: str, message: str, pid: int = 0) -> None:
        self.write(Level.VERBOSE, tag, message, pid)

    def d(self, tag: str, message: str, pid: int = 0) -> None:
        self.write(Level.DEBUG, tag, message, pid)

    def i(self, tag: str, message: str, pid: int = 0) -> None:
        self.write(Level.INFO, tag, message, pid)

    def w(self, tag: str, message: str, pid: int = 0) -> None:
        self.write(Level.WARN, tag, message, pid)

    def e(self, tag: str, message: str, pid: int = 0) -> None:
        self.write(Level.ERROR, tag, message, pid)

    # -- framework-shaped events -----------------------------------------------
    def fatal_exception(self, process_name: str, pid: int, throwable: Throwable) -> None:
        """The ``AndroidRuntime`` block printed when a main thread dies."""
        lines = ["FATAL EXCEPTION: main", f"Process: {process_name}, PID: {pid}"]
        lines.extend(throwable.stack_trace_lines())
        self.write(Level.ERROR, TAG_RUNTIME, "\n".join(lines), pid=pid)

    def handled_exception(self, tag: str, pid: int, throwable: Throwable, context: str = "") -> None:
        """An exception that an app caught and logged (``Log.w`` style)."""
        prefix = f"{context}: " if context else ""
        lines = [prefix + throwable.java_str()]
        lines.extend(str(f) for f in throwable.frames[:4])
        self.write(Level.WARN, tag, "\n".join(lines), pid=pid)

    def security_denial(self, pid: int, detail: str) -> None:
        """System-side ``SecurityException`` (permission denial) entry."""
        self.write(
            Level.WARN,
            TAG_ACTIVITY_MANAGER,
            f"java.lang.SecurityException: Permission Denial: {detail}",
            pid=pid,
        )

    def anr(self, process_name: str, pid: int, component: str, reason: str) -> None:
        """``ActivityManager`` ANR block."""
        lines = [
            f"ANR in {process_name} ({component})",
            f"PID: {pid}",
            f"Reason: {reason}",
        ]
        self.write(Level.ERROR, TAG_ACTIVITY_MANAGER, "\n".join(lines), pid=pid)

    def native_crash(self, signal: NativeSignal, pid: int) -> None:
        """``libc``/debuggerd lines for a fatal native signal."""
        self.write(Level.FATAL, TAG_LIBC, signal.logcat_line(), pid=pid)
        self.write(
            Level.FATAL,
            TAG_DEBUGGERD,
            f"*** *** signal {signal.number} ({signal.signal}), process: {signal.process} *** ***",
            pid=pid,
        )

    def reboot_marker(self, reason: str) -> None:
        """Markers bracketing a device reboot."""
        self.write(Level.ERROR, TAG_SYSTEM, f"!!! SYSTEM REBOOT: {reason} !!!")
        self.write(Level.INFO, TAG_BOOT, "Starting Android runtime")
        self.write(Level.INFO, TAG_BOOT, "Boot completed")

    # -- reads -----------------------------------------------------------------
    def records(self) -> Iterator[LogRecord]:
        return iter(self._records)

    def dump(self) -> str:
        """Full text, the output of ``adb logcat -d``."""
        return "\n".join(record.render() for record in self._records)

    def dump_lines(self) -> List[str]:
        return [record.render() for record in self._records]

    def tail(self, count: int) -> List[str]:
        return [record.render() for record in list(self._records)[-count:]]

    def grep(self, needle: str) -> List[LogRecord]:
        return [r for r in self._records if needle in r.message or needle in r.tag]

    def truncate_oldest(self, count: int) -> None:
        """Discard the *count* oldest records (chaos-plane buffer loss).

        Unlike ring eviction this is silent data loss injected by the fault
        plane, but it is accounted identically: the records count as
        dropped, and the telemetry gauge tracks the shrunken buffer.
        """
        count = min(count, len(self._records))
        for _ in range(count):
            self._records.popleft()
        self._dropped += count
        t = self.runtime.telemetry
        if t.enabled and count:
            _DROPPED_SITE.bind(t.metrics).inc(count)
            _BUFFERED_SITE.bind(t.metrics).set(len(self._records))

    def __getstate__(self) -> dict:
        # Telemetry never survives a pickle (same contract as
        # RuntimeContext): bound handles would smuggle registry children
        # into checkpoint snapshots.  They re-resolve on first write.
        state = self.__dict__.copy()
        state["_bound_registry"] = None
        state["_written_handle"] = None
        state["_buffered_handle"] = None
        return state

    def clear(self) -> None:
        self._records.clear()
        self._dropped = 0

    def __len__(self) -> int:
        return len(self._records)

    @property
    def dropped(self) -> int:
        """Records evicted by the ring buffer (0 when capacity is None)."""
        return self._dropped
