"""Simulated time for the whole device.

The paper's experiment is paced in real time -- 100 ms between successive
intents and an extra 250 ms every 100 intents, with 5 s ANR timeouts for
broadcast-style work and watchdog windows for the system server.  Replaying
1.5M injections at that pace would take ~2 days of wall clock, so the
simulator runs on a virtual monotonic clock: sleeping advances the clock
instantly, while every relative relationship (pacing vs. ANR timeout vs.
aging decay window) is preserved.

The clock also provides a tiny deadline scheduler used by the ANR watchdog
and the system server's health checks.
"""

from __future__ import annotations

import dataclasses
import heapq
import itertools
from typing import Callable, List, Optional


@dataclasses.dataclass(order=True)
class _ScheduledCall:
    deadline_ms: float
    seq: int
    callback: Callable[[], None] = dataclasses.field(compare=False)
    cancelled: bool = dataclasses.field(default=False, compare=False)


class Clock:
    """A virtual monotonic millisecond clock with deadline callbacks."""

    def __init__(self, start_ms: float = 0.0) -> None:
        self._now_ms = float(start_ms)
        self._queue: List[_ScheduledCall] = []
        self._seq = itertools.count()

    # -- time ------------------------------------------------------------------
    def now_ms(self) -> float:
        """Current virtual time in milliseconds since boot."""
        return self._now_ms

    def uptime_millis(self) -> int:
        """Android's ``SystemClock.uptimeMillis()`` analogue."""
        return int(self._now_ms)

    def sleep(self, duration_ms: float) -> None:
        """Advance time by *duration_ms*, firing any due callbacks in order."""
        if duration_ms < 0:
            raise ValueError(f"cannot sleep a negative duration: {duration_ms}")
        self.advance_to(self._now_ms + duration_ms)

    def advance_to(self, deadline_ms: float) -> None:
        """Advance time to *deadline_ms* (no-op if already past)."""
        if deadline_ms < self._now_ms:
            return
        while self._queue and self._queue[0].deadline_ms <= deadline_ms:
            call = heapq.heappop(self._queue)
            if call.cancelled:
                continue
            # Jump to the callback's own deadline before running it so the
            # callback observes a consistent "now".
            self._now_ms = max(self._now_ms, call.deadline_ms)
            call.callback()
        self._now_ms = max(self._now_ms, deadline_ms)

    # -- scheduling --------------------------------------------------------------
    def call_at(self, deadline_ms: float, callback: Callable[[], None]) -> "ScheduledHandle":
        """Run *callback* when time reaches *deadline_ms*."""
        call = _ScheduledCall(deadline_ms=deadline_ms, seq=next(self._seq), callback=callback)
        heapq.heappush(self._queue, call)
        return ScheduledHandle(call)

    def call_after(self, delay_ms: float, callback: Callable[[], None]) -> "ScheduledHandle":
        """Run *callback* after *delay_ms* of virtual time."""
        if delay_ms < 0:
            raise ValueError(f"negative delay: {delay_ms}")
        return self.call_at(self._now_ms + delay_ms, callback)

    def pending_count(self) -> int:
        return sum(1 for call in self._queue if not call.cancelled)

    def drain(self, horizon_ms: Optional[float] = None) -> None:
        """Run all pending callbacks up to *horizon_ms* (default: all)."""
        while self._queue:
            head = self._queue[0]
            if head.cancelled:
                heapq.heappop(self._queue)
                continue
            if horizon_ms is not None and head.deadline_ms > horizon_ms:
                break
            self.advance_to(head.deadline_ms)


class ScheduledHandle:
    """Cancellation handle returned by :meth:`Clock.call_at`."""

    def __init__(self, call: _ScheduledCall) -> None:
        self._call = call

    def cancel(self) -> None:
        self._call.cancelled = True

    @property
    def cancelled(self) -> bool:
        return self._call.cancelled

    @property
    def deadline_ms(self) -> float:
        return self._call.deadline_ms
