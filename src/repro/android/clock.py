"""Simulated time for the whole device.

The paper's experiment is paced in real time -- 100 ms between successive
intents and an extra 250 ms every 100 intents, with 5 s ANR timeouts for
broadcast-style work and watchdog windows for the system server.  Replaying
1.5M injections at that pace would take ~2 days of wall clock, so the
simulator runs on a virtual monotonic clock: sleeping advances the clock
instantly, while every relative relationship (pacing vs. ANR timeout vs.
aging decay window) is preserved.

The clock also provides a tiny deadline scheduler used by the ANR watchdog
and the system server's health checks, and a :class:`FleetScheduler` that
interleaves many independent device pairs -- each on its own clock -- inside
a single worker process by always stepping the pair with the earliest next
virtual deadline.
"""

from __future__ import annotations

import dataclasses
import heapq
import itertools
from typing import Any, Callable, Dict, Generator, List, Optional

# Compacting a tiny queue costs more bookkeeping than it saves; below this
# size cancelled entries are simply left for advance_to/drain to skip.
_COMPACT_MIN_QUEUE = 8


@dataclasses.dataclass(order=True)
class _ScheduledCall:
    deadline_ms: float
    seq: int
    callback: Callable[[], None] = dataclasses.field(compare=False)
    cancelled: bool = dataclasses.field(default=False, compare=False)


class Clock:
    """A virtual monotonic millisecond clock with deadline callbacks."""

    def __init__(self, start_ms: float = 0.0) -> None:
        self._now_ms = float(start_ms)
        self._queue: List[_ScheduledCall] = []
        self._seq = itertools.count()
        self._cancelled_count = 0

    # -- time ------------------------------------------------------------------
    def now_ms(self) -> float:
        """Current virtual time in milliseconds since boot."""
        return self._now_ms

    def uptime_millis(self) -> int:
        """Android's ``SystemClock.uptimeMillis()`` analogue."""
        return int(self._now_ms)

    def sleep(self, duration_ms: float) -> None:
        """Advance time by *duration_ms*, firing any due callbacks in order."""
        if duration_ms < 0:
            raise ValueError(f"cannot sleep a negative duration: {duration_ms}")
        self.advance_to(self._now_ms + duration_ms)

    def advance_to(self, deadline_ms: float) -> None:
        """Advance time to *deadline_ms* (no-op if already past)."""
        if deadline_ms < self._now_ms:
            return
        while self._queue and self._queue[0].deadline_ms <= deadline_ms:
            call = heapq.heappop(self._queue)
            if call.cancelled:
                self._cancelled_count -= 1
                continue
            # Jump to the callback's own deadline before running it so the
            # callback observes a consistent "now".  Callbacks scheduled
            # re-entrantly from inside a callback -- even at exactly this
            # deadline -- land behind it in the heap (same deadline, higher
            # seq) and fire in scheduling order on the next loop iteration.
            self._now_ms = max(self._now_ms, call.deadline_ms)
            call.callback()
        self._now_ms = max(self._now_ms, deadline_ms)

    # -- scheduling --------------------------------------------------------------
    def call_at(self, deadline_ms: float, callback: Callable[[], None]) -> "ScheduledHandle":
        """Run *callback* when time reaches *deadline_ms*."""
        call = _ScheduledCall(deadline_ms=deadline_ms, seq=next(self._seq), callback=callback)
        heapq.heappush(self._queue, call)
        return ScheduledHandle(call, self)

    def call_after(self, delay_ms: float, callback: Callable[[], None]) -> "ScheduledHandle":
        """Run *callback* after *delay_ms* of virtual time."""
        if delay_ms < 0:
            raise ValueError(f"negative delay: {delay_ms}")
        return self.call_at(self._now_ms + delay_ms, callback)

    def pending_count(self) -> int:
        return len(self._queue) - self._cancelled_count

    def cancelled_count(self) -> int:
        """Cancelled-but-not-yet-reaped entries still occupying the heap."""
        return self._cancelled_count

    def _cancel(self, call: _ScheduledCall) -> None:
        if call.cancelled:
            return
        call.cancelled = True
        self._cancelled_count += 1
        # Long fleet runs arm and cancel watchdog timers constantly; once
        # dead entries dominate the heap, rebuild it so memory stays bounded
        # by the number of *live* timers.
        if (
            len(self._queue) >= _COMPACT_MIN_QUEUE
            and self._cancelled_count * 2 > len(self._queue)
        ):
            self._compact()

    def _compact(self) -> None:
        self._queue = [entry for entry in self._queue if not entry.cancelled]
        heapq.heapify(self._queue)
        self._cancelled_count = 0

    def drain(self, horizon_ms: Optional[float] = None) -> None:
        """Run all pending callbacks up to *horizon_ms* (default: all)."""
        while self._queue:
            head = self._queue[0]
            if head.cancelled:
                heapq.heappop(self._queue)
                self._cancelled_count -= 1
                continue
            if horizon_ms is not None and head.deadline_ms > horizon_ms:
                break
            self.advance_to(head.deadline_ms)


class ScheduledHandle:
    """Cancellation handle returned by :meth:`Clock.call_at`."""

    def __init__(self, call: _ScheduledCall, clock: Optional[Clock] = None) -> None:
        self._call = call
        self._clock = clock

    def cancel(self) -> None:
        if self._clock is not None:
            self._clock._cancel(self._call)
        else:
            self._call.cancelled = True

    @property
    def cancelled(self) -> bool:
        return self._call.cancelled

    @property
    def deadline_ms(self) -> float:
        return self._call.deadline_ms


# A pair task is a generator that yields absolute virtual deadlines on its
# own clock ("wake me when my clock reaches t") and returns its result via
# StopIteration.value.
PairTask = Generator[float, None, Any]


@dataclasses.dataclass(order=True)
class _FleetEntry:
    deadline_ms: float
    seq: int
    key: str = dataclasses.field(compare=False)
    clock: Clock = dataclasses.field(compare=False)
    task: PairTask = dataclasses.field(compare=False)


class FleetScheduler:
    """Cooperative earliest-deadline interleaving of independent pair tasks.

    Each task owns a private :class:`Clock` (one simulated watch+phone pair)
    and yields the absolute virtual deadline it wants to sleep until.  The
    scheduler always resumes the task whose next deadline is earliest across
    the fleet -- ties broken by admission order -- after advancing that
    task's own clock to the deadline.  Because tasks share no simulated
    state, the interleaving cannot change any per-pair outcome; it only
    decides which pair's fixed timeline is replayed next, which is what lets
    one worker process multiplex a whole lane of pairs.
    """

    def __init__(self) -> None:
        self._ready: List[_FleetEntry] = []
        self._seq = itertools.count()
        self._results: Dict[str, Any] = {}
        self.active = 0
        self.peak_active = 0
        self.steps = 0

    def add(self, key: str, clock: Clock, task: PairTask) -> None:
        """Admit *task* (keyed for result lookup) running on *clock*."""
        if key in self._results:
            raise ValueError(f"duplicate fleet task key: {key}")
        self._results[key] = None
        self.active += 1
        self.peak_active = max(self.peak_active, self.active)
        self._step(_FleetEntry(clock.now_ms(), next(self._seq), key, clock, task), first=True)

    def _step(self, entry: _FleetEntry, first: bool = False) -> None:
        try:
            if first:
                deadline = next(entry.task)
            else:
                deadline = entry.task.send(None)
        except StopIteration as stop:
            self._results[entry.key] = stop.value
            self.active -= 1
            return
        if deadline < entry.clock.now_ms():
            raise ValueError(
                f"fleet task {entry.key!r} yielded a deadline in its past: "
                f"{deadline} < {entry.clock.now_ms()}"
            )
        heapq.heappush(
            self._ready,
            _FleetEntry(deadline, entry.seq, entry.key, entry.clock, entry.task),
        )

    def run(self) -> Dict[str, Any]:
        """Drive all admitted tasks to completion; return results by key."""
        while self._ready:
            entry = heapq.heappop(self._ready)
            entry.clock.advance_to(entry.deadline_ms)
            self.steps += 1
            self._step(entry)
        return dict(self._results)

    def run_some(self, max_steps: int) -> bool:
        """Run up to *max_steps* resumptions; return True while work remains.

        Lane runners use this to interleave heartbeat/kill-switch checks
        with scheduling without giving up the earliest-deadline order.
        """
        for _ in range(max_steps):
            if not self._ready:
                return False
            entry = heapq.heappop(self._ready)
            entry.clock.advance_to(entry.deadline_ms)
            self.steps += 1
            self._step(entry)
        return bool(self._ready)

    def results(self) -> Dict[str, Any]:
        return dict(self._results)
