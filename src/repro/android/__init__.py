"""The simulated Android OS substrate.

Everything the DSN'18 wearable-reliability study assumes about the platform
lives here: intents and their resolution rules, the component lifecycle, the
permission model, processes with crash/ANR semantics, the sensor stack, the
system server's aging/reboot model, logcat, and the adb endpoint.
"""

from repro.android.activity_manager import ActivityManager, DispatchResult
from repro.android.adb import Adb, ShellResult
from repro.android.clock import Clock
from repro.android.component import (
    Activity,
    ActivityState,
    BroadcastReceiver,
    Component,
    ComponentInfo,
    ComponentKind,
    Service,
    ServiceState,
)
from repro.android.context import Context
from repro.android.device import Device
from repro.android.intent import ComponentName, Intent, IntentFilter
from repro.android.log import Level, Logcat
from repro.android.package_manager import (
    AppCategory,
    AppOrigin,
    PackageInfo,
    PackageManager,
)
from repro.android.permissions import PermissionManager
from repro.android.process import ProcessRecord, ProcessState, ProcessTable
from repro.android.sensor import SensorManager, SensorService
from repro.android.system_server import AgingModel, SystemServer
from repro.android.uri import Uri

__all__ = [
    "ActivityManager",
    "Adb",
    "AgingModel",
    "Activity",
    "ActivityState",
    "AppCategory",
    "AppOrigin",
    "BroadcastReceiver",
    "Clock",
    "Component",
    "ComponentInfo",
    "ComponentKind",
    "ComponentName",
    "Context",
    "Device",
    "DispatchResult",
    "Intent",
    "IntentFilter",
    "Level",
    "Logcat",
    "PackageInfo",
    "PackageManager",
    "PermissionManager",
    "ProcessRecord",
    "ProcessState",
    "ProcessTable",
    "SensorManager",
    "SensorService",
    "Service",
    "ServiceState",
    "ShellResult",
    "SystemServer",
    "Uri",
]
