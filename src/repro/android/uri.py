"""A small ``android.net.Uri`` work-alike.

Intents carry their data item as a URI (``https://…``, ``tel:123``,
``content://contacts/1``).  The fuzz campaigns of the paper generate twelve
different URI *types* (schemes), combine them with actions, and blank or
randomise them, so the simulator needs a URI model that:

* parses both hierarchical (``scheme://authority/path?query#fragment``) and
  opaque (``tel:123``, ``mailto:foo@bar``) forms,
* survives arbitrary garbage (random campaigns feed it random ASCII), and
* round-trips back to the exact string for logging.

``Uri.parse`` never raises; malformed input yields an *opaque* URI whose
``scheme`` may be ``None``, mirroring Android's forgiving parser.  Components
that *require* well-formed URIs perform their own validation and raise
``IllegalArgumentException`` -- that separation of duties is exactly what the
study probes.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Tuple


_HIER_MARKER = "://"


@dataclasses.dataclass(frozen=True)
class Uri:
    """Immutable parsed URI.

    Attributes mirror ``android.net.Uri`` getters: any part that is absent is
    ``None`` (never the empty string), matching Android semantics.
    """

    scheme: Optional[str]
    authority: Optional[str]
    path: Optional[str]
    query: Optional[str]
    fragment: Optional[str]
    opaque_part: Optional[str]
    original: str

    # -- parsing ---------------------------------------------------------------
    @staticmethod
    def parse(text: str) -> "Uri":
        """Parse *text*; never raises.

        Hierarchical URIs contain ``://``; everything else is treated as
        ``scheme:opaque-part`` when a ``:`` is present, or as a bare opaque
        string otherwise.
        """
        if not isinstance(text, str):
            raise TypeError(f"Uri.parse expects str, got {type(text).__name__}")
        fragment: Optional[str] = None
        body = text
        if "#" in body:
            body, fragment = body.split("#", 1)
            fragment = fragment or None

        if _HIER_MARKER in body:
            scheme, rest = body.split(_HIER_MARKER, 1)
            query: Optional[str] = None
            if "?" in rest:
                rest, query = rest.split("?", 1)
                query = query or None
            if "/" in rest:
                authority, path = rest.split("/", 1)
                path = "/" + path
            else:
                authority, path = rest, None
            return Uri(
                scheme=scheme or None,
                authority=authority or None,
                path=path,
                query=query,
                fragment=fragment,
                opaque_part=None,
                original=text,
            )

        if ":" in body:
            scheme, opaque = body.split(":", 1)
            # A scheme must start with a letter and contain only
            # [A-Za-z0-9+.-]; otherwise the whole thing is opaque garbage.
            if scheme and scheme[0].isalpha() and all(
                c.isalnum() or c in "+.-" for c in scheme
            ):
                return Uri(
                    scheme=scheme,
                    authority=None,
                    path=None,
                    query=None,
                    fragment=fragment,
                    opaque_part=opaque or None,
                    original=text,
                )
        return Uri(
            scheme=None,
            authority=None,
            path=None,
            query=None,
            fragment=fragment,
            opaque_part=body or None,
            original=text,
        )

    # -- accessors ---------------------------------------------------------------
    def is_hierarchical(self) -> bool:
        return self.authority is not None or (
            self.path is not None and self.opaque_part is None
        )

    def is_opaque(self) -> bool:
        return not self.is_hierarchical()

    def is_well_formed(self) -> bool:
        """True when the URI has a scheme and some content after it."""
        if self.scheme is None:
            return False
        return bool(self.authority or self.path or self.opaque_part)

    def query_parameters(self) -> Dict[str, str]:
        """Decode ``a=1&b=2`` queries; later keys win, bare keys map to ''."""
        params: Dict[str, str] = {}
        if not self.query:
            return params
        for chunk in self.query.split("&"):
            if not chunk:
                continue
            key, _, value = chunk.partition("=")
            params[key] = value
        return params

    def last_path_segment(self) -> Optional[str]:
        if not self.path:
            return None
        segments = [s for s in self.path.split("/") if s]
        return segments[-1] if segments else None

    def __str__(self) -> str:
        return self.original


def build_hierarchical(
    scheme: str,
    authority: str,
    path: str = "",
    query: Optional[str] = None,
    fragment: Optional[str] = None,
) -> Uri:
    """Construct a hierarchical URI from parts (the ``Uri.Builder`` analogue)."""
    text = f"{scheme}://{authority}"
    if path:
        if not path.startswith("/"):
            path = "/" + path
        text += path
    if query:
        text += "?" + query
    if fragment:
        text += "#" + fragment
    return Uri.parse(text)


def build_opaque(scheme: str, opaque_part: str) -> Uri:
    """Construct an opaque URI such as ``tel:5551234``."""
    return Uri.parse(f"{scheme}:{opaque_part}")


def scheme_of(text: Optional[str]) -> Optional[str]:
    """Convenience: the scheme of *text*, or ``None`` for blank/garbage."""
    if not text:
        return None
    return Uri.parse(text).scheme


#: The canonical MIME types components may declare for intent data; used by
#: intent-filter matching and by campaign D's valid {Action, Data} pairs.
KNOWN_MIME_TYPES: Tuple[str, ...] = (
    "text/plain",
    "text/html",
    "image/*",
    "image/png",
    "image/jpeg",
    "audio/*",
    "video/*",
    "application/pdf",
    "vnd.android.cursor.item/contact",
    "vnd.android.cursor.item/event",
    "vnd.android.cursor.dir/email",
    "application/vnd.google.fitness.activity",
)
