"""Java-style throwable types for the simulated Android runtime.

The Android runtime that this package simulates is a Java world: failures
surface as ``java.lang.*`` / ``android.*`` exception objects that carry a
message, an optional *cause* chain, and a synthetic stack trace.  The fuzz
study reproduced here ("How Reliable Is My Wearable", DSN 2018) reasons
entirely in terms of these exception classes -- which class was raised, where
it was raised, what caused what -- so we model them faithfully instead of
reusing Python's built-in exceptions.

Every throwable knows how to render itself exactly the way ``logcat`` prints
an uncaught exception::

    java.lang.NullPointerException: Attempt to invoke virtual method ...
        at com.example.fit.MainActivity.onCreate(MainActivity.java:42)
        at android.app.ActivityThread.performLaunchActivity(ActivityThread.java:2817)
    Caused by: java.lang.IllegalStateException: ...
        at ...

The analysis pipeline (:mod:`repro.analysis.logparse`) parses that exact
grammar back out of the collected logs, which keeps the reproduction honest:
results flow through real log text, not through in-memory shortcuts.
"""

from __future__ import annotations

import dataclasses
from typing import Iterable, Iterator, List, Optional, Sequence


@dataclasses.dataclass(frozen=True)
class StackFrame:
    """One ``at`` line of a Java stack trace."""

    class_name: str
    method: str
    file: str
    line: int

    def __str__(self) -> str:
        return f"at {self.class_name}.{self.method}({self.file}:{self.line})"


def frame(class_name: str, method: str, line: int, file: Optional[str] = None) -> StackFrame:
    """Build a :class:`StackFrame`, deriving the file name from the class.

    ``frame("com.example.app.MainActivity", "onCreate", 42)`` yields the
    frame ``at com.example.app.MainActivity.onCreate(MainActivity.java:42)``.
    """
    if file is None:
        simple = class_name.rsplit(".", 1)[-1]
        # Inner classes (Foo$Bar) live in the outer class's file.
        simple = simple.split("$", 1)[0]
        file = simple + ".java"
    return StackFrame(class_name=class_name, method=method, file=file, line=line)


# Framework frames appended below app frames so traces look like real ART
# dumps.  The analysis never depends on these, but realistic traces exercise
# the parser the way real logs would.
_FRAMEWORK_ACTIVITY_FRAMES: Sequence[StackFrame] = (
    frame("android.app.ActivityThread", "performLaunchActivity", 2817),
    frame("android.app.ActivityThread", "handleLaunchActivity", 2892),
    frame("android.app.ActivityThread", "-wrap11", 1),
    frame("android.app.ActivityThread$H", "handleMessage", 1593),
    frame("android.os.Handler", "dispatchMessage", 105),
    frame("android.os.Looper", "loop", 164),
    frame("android.app.ActivityThread", "main", 6541),
)

_FRAMEWORK_SERVICE_FRAMES: Sequence[StackFrame] = (
    frame("android.app.ActivityThread", "handleServiceArgs", 3416),
    frame("android.app.ActivityThread", "-wrap21", 1),
    frame("android.app.ActivityThread$H", "handleMessage", 1691),
    frame("android.os.Handler", "dispatchMessage", 105),
    frame("android.os.Looper", "loop", 164),
    frame("android.app.ActivityThread", "main", 6541),
)


class Throwable(Exception):
    """Root of the simulated Java throwable hierarchy.

    Parameters
    ----------
    message:
        The detail message (may be ``None``, as in Java).
    cause:
        Optional nested :class:`Throwable`, rendered as a ``Caused by:``
        section.
    frames:
        Application stack frames (topmost first).  Framework frames are
        appended automatically when the throwable is raised on a component's
        main thread; see :meth:`with_frames`.
    """

    #: Fully qualified Java class name; subclasses override.
    JAVA_NAME = "java.lang.Throwable"

    def __init__(
        self,
        message: Optional[str] = None,
        cause: Optional["Throwable"] = None,
        frames: Optional[Iterable[StackFrame]] = None,
    ) -> None:
        super().__init__(message)
        self.message = message
        self.cause = cause
        self.frames: List[StackFrame] = list(frames or [])

    # -- construction helpers -------------------------------------------------
    def with_frames(self, frames: Iterable[StackFrame], component_kind: str = "activity") -> "Throwable":
        """Return ``self`` with *frames* installed plus framework padding."""
        padding = (
            _FRAMEWORK_SERVICE_FRAMES if component_kind == "service" else _FRAMEWORK_ACTIVITY_FRAMES
        )
        self.frames = list(frames) + list(padding)
        return self

    # -- Java-style rendering --------------------------------------------------
    def java_str(self) -> str:
        """``ClassName: message`` (or bare class name if no message)."""
        if self.message is None:
            return self.JAVA_NAME
        return f"{self.JAVA_NAME}: {self.message}"

    def stack_trace_lines(self) -> List[str]:
        """Render the full trace, including the ``Caused by:`` chain."""
        lines = [self.java_str()]
        lines.extend(f"\t{f}" for f in self.frames)
        seen = 0
        cause = self.cause
        while cause is not None and seen < 8:  # defensive bound against cycles
            lines.append(f"Caused by: {cause.java_str()}")
            lines.extend(f"\t{f}" for f in cause.frames)
            cause = cause.cause
            seen += 1
        return lines

    def cause_chain(self) -> Iterator["Throwable"]:
        """Yield ``self`` then each cause, outermost first."""
        node: Optional[Throwable] = self
        hops = 0
        while node is not None and hops < 16:
            yield node
            node = node.cause
            hops += 1

    def root_cause(self) -> "Throwable":
        """The innermost throwable of the cause chain."""
        node = self
        for node in self.cause_chain():
            pass
        return node

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.java_str()!r}>"


# --------------------------------------------------------------------------
# java.lang hierarchy
# --------------------------------------------------------------------------

class JavaException(Throwable):
    JAVA_NAME = "java.lang.Exception"


class RuntimeException(JavaException):
    JAVA_NAME = "java.lang.RuntimeException"


class NullPointerException(RuntimeException):
    JAVA_NAME = "java.lang.NullPointerException"


class IllegalArgumentException(RuntimeException):
    JAVA_NAME = "java.lang.IllegalArgumentException"


class IllegalStateException(RuntimeException):
    JAVA_NAME = "java.lang.IllegalStateException"


class SecurityException(RuntimeException):
    JAVA_NAME = "java.lang.SecurityException"


class ArithmeticException(RuntimeException):
    JAVA_NAME = "java.lang.ArithmeticException"


class UnsupportedOperationException(RuntimeException):
    JAVA_NAME = "java.lang.UnsupportedOperationException"


class ClassCastException(RuntimeException):
    JAVA_NAME = "java.lang.ClassCastException"


class IndexOutOfBoundsException(RuntimeException):
    JAVA_NAME = "java.lang.IndexOutOfBoundsException"


class NumberFormatException(IllegalArgumentException):
    JAVA_NAME = "java.lang.NumberFormatException"


class ClassNotFoundException(JavaException):
    JAVA_NAME = "java.lang.ClassNotFoundException"


# --------------------------------------------------------------------------
# android.* hierarchy
# --------------------------------------------------------------------------

class ActivityNotFoundException(RuntimeException):
    JAVA_NAME = "android.content.ActivityNotFoundException"


class RemoteException(JavaException):
    JAVA_NAME = "android.os.RemoteException"


class DeadObjectException(RemoteException):
    JAVA_NAME = "android.os.DeadObjectException"


class BadParcelableException(RuntimeException):
    JAVA_NAME = "android.os.BadParcelableException"


class TransactionTooLargeException(RemoteException):
    JAVA_NAME = "android.os.TransactionTooLargeException"


class WindowBadTokenException(RuntimeException):
    JAVA_NAME = "android.view.WindowManager$BadTokenException"


class SQLiteException(RuntimeException):
    JAVA_NAME = "android.database.sqlite.SQLiteException"


class NetworkOnMainThreadException(RuntimeException):
    JAVA_NAME = "android.os.NetworkOnMainThreadException"


class OutOfMemoryError(Throwable):
    JAVA_NAME = "java.lang.OutOfMemoryError"


class StackOverflowError(Throwable):
    JAVA_NAME = "java.lang.StackOverflowError"


class NoSuchMethodError(Throwable):
    JAVA_NAME = "java.lang.NoSuchMethodError"


#: Registry of every concrete throwable class keyed by its Java name, used by
#: the log parser and by the app behaviour models.
THROWABLE_CLASSES = {
    cls.JAVA_NAME: cls
    for cls in (
        Throwable,
        JavaException,
        RuntimeException,
        NullPointerException,
        IllegalArgumentException,
        IllegalStateException,
        SecurityException,
        ArithmeticException,
        UnsupportedOperationException,
        ClassCastException,
        IndexOutOfBoundsException,
        NumberFormatException,
        ClassNotFoundException,
        ActivityNotFoundException,
        RemoteException,
        DeadObjectException,
        BadParcelableException,
        TransactionTooLargeException,
        WindowBadTokenException,
        SQLiteException,
        NetworkOnMainThreadException,
        OutOfMemoryError,
        StackOverflowError,
        NoSuchMethodError,
    )
}


def throwable_from_name(java_name: str, message: Optional[str] = None) -> Throwable:
    """Instantiate the throwable class registered under *java_name*.

    Unknown names produce a plain :class:`Throwable` whose ``JAVA_NAME`` is
    patched to the requested name, so the parser can round-trip exception
    classes it has never seen (vendor-specific classes appear in real logs).
    """
    cls = THROWABLE_CLASSES.get(java_name)
    if cls is not None:
        return cls(message)
    unknown = Throwable(message)
    unknown.JAVA_NAME = java_name  # type: ignore[misc]
    return unknown


# --------------------------------------------------------------------------
# Native-level failures (not Java throwables, but part of the failure model)
# --------------------------------------------------------------------------

@dataclasses.dataclass(frozen=True)
class NativeSignal:
    """A fatal signal delivered to a (possibly native) process.

    The paper's two device reboots are rooted in native failures: a SIGABRT
    that killed ``/system/lib/libsensorservice.so`` and a SIGSEGV in a system
    process.  These are not Java exceptions, so they get their own type.
    """

    signal: str          # e.g. "SIGABRT", "SIGSEGV"
    number: int          # e.g. 6, 11
    process: str         # process or library name
    reason: str = ""

    def logcat_line(self) -> str:
        body = f"Fatal signal {self.number} ({self.signal}) in {self.process}"
        if self.reason:
            body += f": {self.reason}"
        return body


SIGABRT = "SIGABRT"
SIGSEGV = "SIGSEGV"


def sigabrt(process: str, reason: str = "") -> NativeSignal:
    return NativeSignal(signal=SIGABRT, number=6, process=process, reason=reason)


def sigsegv(process: str, reason: str = "") -> NativeSignal:
    return NativeSignal(signal=SIGSEGV, number=11, process=process, reason=reason)
