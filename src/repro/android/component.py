"""Application components: activities, services, receivers.

The study fuzzes two component kinds -- *Activities* (UI entry points) and
*Services* (background workers) -- because together they make up the large
majority of Android Wear app components.  This module models:

* the manifest-level description of a component (:class:`ComponentInfo`):
  exported or not, guarded by which permission, matching which intent
  filters, running in which process;
* the runtime base classes with their lifecycle state machines.  Lifecycle
  misuse raises ``IllegalStateException`` exactly like the framework does --
  one of the headline exception classes in the paper's results;
* a single overridable hook, :meth:`Component.on_handle_intent`, where app
  behaviour models plug in their input validation (or lack of it).
"""

from __future__ import annotations

import dataclasses
import enum
from typing import TYPE_CHECKING, List, Optional, Sequence

from repro.android.intent import ComponentName, Intent, IntentFilter
from repro.android.jtypes import IllegalStateException, Throwable, frame

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.android.context import Context


class ComponentKind(enum.Enum):
    ACTIVITY = "activity"
    SERVICE = "service"
    RECEIVER = "receiver"

    def __str__(self) -> str:
        return self.value


@dataclasses.dataclass
class ComponentInfo:
    """Manifest entry for one component."""

    name: ComponentName
    kind: ComponentKind
    exported: bool = True
    permission: Optional[str] = None
    intent_filters: List[IntentFilter] = dataclasses.field(default_factory=list)
    process_name: Optional[str] = None
    #: Key into the behaviour-model registry; ``None`` means framework default.
    behavior_key: Optional[str] = None

    @property
    def package(self) -> str:
        return self.name.package

    def effective_process(self) -> str:
        return self.process_name or self.package

    def is_launcher(self) -> bool:
        return any(
            "android.intent.action.MAIN" in f.actions
            and "android.intent.category.LAUNCHER" in f.categories
            for f in self.intent_filters
        )


class ActivityState(enum.Enum):
    INITIALIZED = "initialized"
    CREATED = "created"
    STARTED = "started"
    RESUMED = "resumed"
    PAUSED = "paused"
    STOPPED = "stopped"
    DESTROYED = "destroyed"


class ServiceState(enum.Enum):
    INITIALIZED = "initialized"
    CREATED = "created"
    STARTED = "started"
    DESTROYED = "destroyed"


class Component:
    """Base runtime component.

    Subclasses provide behaviour by overriding :meth:`on_handle_intent`; the
    default implementation accepts everything silently (a perfectly robust
    component).  The hook returns the virtual handler cost in milliseconds,
    letting behaviour models express blocking handlers (ANRs).
    """

    def __init__(self, info: ComponentInfo, context: "Context") -> None:
        self.info = info
        self.context = context

    @property
    def component_name(self) -> ComponentName:
        return self.info.name

    def on_handle_intent(self, intent: Intent, phase: str) -> float:
        """Inspect *intent* during lifecycle *phase*.

        Returns the handler's virtual duration in ms.  Raise a
        :class:`~repro.android.jtypes.Throwable` to model a defect.
        """
        return 1.0

    def on_ui_event(self, kind: str, **params: object) -> float:
        """Handle a user-interface event (tap, key, swipe, …).

        UI event handlers proved far more robust than intent handlers in the
        study (0.05% crash rate); behaviour models override this to inject
        the few defects that remain.  Returns the handler cost in ms.
        """
        return 0.5

    def _throw_site(self, method: str, line: int) -> list:
        return [frame(self.info.name.class_name, method, line)]

    def illegal_state(self, method: str, detail: str) -> Throwable:
        exc = IllegalStateException(detail)
        exc.frames = self._throw_site(method, 71)
        return exc


class Activity(Component):
    """An activity with the framework's lifecycle state machine."""

    def __init__(self, info: ComponentInfo, context: "Context") -> None:
        super().__init__(info, context)
        self.state = ActivityState.INITIALIZED
        self.intent: Optional[Intent] = None
        self.handler_cost_ms = 0.0

    # -- lifecycle ---------------------------------------------------------------
    def perform_create(self, intent: Intent) -> None:
        if self.state != ActivityState.INITIALIZED:
            raise self.illegal_state(
                "performCreate", f"Activity already created (state={self.state.value})"
            )
        self.intent = intent
        self.handler_cost_ms += self.on_create(intent)
        self.state = ActivityState.CREATED

    def perform_start(self) -> None:
        if self.state not in (ActivityState.CREATED, ActivityState.STOPPED):
            raise self.illegal_state(
                "performStart", f"Cannot start activity in state {self.state.value}"
            )
        self.handler_cost_ms += self.on_start()
        self.state = ActivityState.STARTED

    def perform_resume(self) -> None:
        if self.state not in (ActivityState.STARTED, ActivityState.PAUSED):
            raise self.illegal_state(
                "performResume", f"Cannot resume activity in state {self.state.value}"
            )
        self.handler_cost_ms += self.on_resume()
        self.state = ActivityState.RESUMED

    def perform_new_intent(self, intent: Intent) -> None:
        if self.state == ActivityState.DESTROYED:
            raise self.illegal_state("performNewIntent", "Activity is destroyed")
        self.intent = intent
        self.handler_cost_ms += self.on_new_intent(intent)

    def perform_pause(self) -> None:
        if self.state != ActivityState.RESUMED:
            raise self.illegal_state(
                "performPause", f"Cannot pause activity in state {self.state.value}"
            )
        self.state = ActivityState.PAUSED

    def perform_stop(self) -> None:
        if self.state not in (ActivityState.PAUSED, ActivityState.STARTED):
            raise self.illegal_state(
                "performStop", f"Cannot stop activity in state {self.state.value}"
            )
        self.state = ActivityState.STOPPED

    def perform_destroy(self) -> None:
        self.state = ActivityState.DESTROYED

    # -- overridable callbacks ----------------------------------------------------
    def on_create(self, intent: Intent) -> float:
        return self.on_handle_intent(intent, "onCreate")

    def on_start(self) -> float:
        return 0.5

    def on_resume(self) -> float:
        return 0.5

    def on_new_intent(self, intent: Intent) -> float:
        return self.on_handle_intent(intent, "onNewIntent")


class Service(Component):
    """A started/bound service with the framework's lifecycle."""

    def __init__(self, info: ComponentInfo, context: "Context") -> None:
        super().__init__(info, context)
        self.state = ServiceState.INITIALIZED
        self.start_count = 0
        self.bound_clients = 0
        self.handler_cost_ms = 0.0

    def perform_create(self) -> None:
        if self.state != ServiceState.INITIALIZED:
            raise self.illegal_state(
                "performCreate", f"Service already created (state={self.state.value})"
            )
        self.handler_cost_ms += self.on_create()
        self.state = ServiceState.CREATED

    def perform_start_command(self, intent: Optional[Intent], start_id: int) -> None:
        if self.state == ServiceState.DESTROYED:
            raise self.illegal_state("performStartCommand", "Service is destroyed")
        if self.state == ServiceState.INITIALIZED:
            raise self.illegal_state("performStartCommand", "Service not created yet")
        self.start_count += 1
        self.handler_cost_ms += self.on_start_command(intent, start_id)
        self.state = ServiceState.STARTED

    def perform_bind(self, intent: Intent) -> None:
        if self.state == ServiceState.DESTROYED:
            raise self.illegal_state("performBind", "Service is destroyed")
        self.bound_clients += 1
        self.handler_cost_ms += self.on_bind(intent)

    def perform_unbind(self) -> None:
        if self.bound_clients <= 0:
            raise self.illegal_state("performUnbind", "Service has no bound clients")
        self.bound_clients -= 1

    def perform_destroy(self) -> None:
        self.state = ServiceState.DESTROYED

    # -- overridable callbacks ----------------------------------------------------
    def on_create(self) -> float:
        return 0.5

    def on_start_command(self, intent: Optional[Intent], start_id: int) -> float:
        if intent is None:
            return 0.5
        return self.on_handle_intent(intent, "onStartCommand")

    def on_bind(self, intent: Intent) -> float:
        return self.on_handle_intent(intent, "onBind")


class BroadcastReceiver(Component):
    """A broadcast receiver (modelled minimally; QGJ targets the other two)."""

    def perform_receive(self, intent: Intent) -> float:
        return self.on_handle_intent(intent, "onReceive")


def runtime_class_for(kind: ComponentKind) -> type:
    """The runtime base class used when a component has no custom class."""
    if kind == ComponentKind.ACTIVITY:
        return Activity
    if kind == ComponentKind.SERVICE:
        return Service
    return BroadcastReceiver


def describe_components(infos: Sequence[ComponentInfo]) -> str:
    """Human-readable inventory, used by QGJ Mobile's UI."""
    lines = []
    for info in infos:
        guard = f" permission={info.permission}" if info.permission else ""
        exported = "exported" if info.exported else "not-exported"
        lines.append(f"{info.kind.value:8s} {info.name.flatten_to_short_string()} [{exported}]{guard}")
    return "\n".join(lines)
