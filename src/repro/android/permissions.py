"""The Android permission model, as far as the fuzz study exercises it.

QGJ is deliberately an *unprivileged* tool -- the paper stresses it needs no
root.  A large slice of its injected intents are therefore rejected by the
system before any app code runs: 81.3% of all exceptions observed in the
study were ``SecurityException``s, thrown when a mutated intent used an
action reserved for privileged OS processes (e.g. ``ACTION_BATTERY_LOW``) or
targeted a component guarded by a permission the sender does not hold.

This module provides:

* a registry of permissions with Android's protection levels,
* the set of *protected* system actions that only the OS may send,
* per-package grant tracking and the ``checkPermission`` entry points the
  activity manager consults before delivering an intent.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Dict, FrozenSet, Iterable, Optional, Set


class ProtectionLevel(enum.Enum):
    """Android permission protection levels (simplified)."""

    NORMAL = "normal"
    DANGEROUS = "dangerous"
    SIGNATURE = "signature"
    PRIVILEGED = "signature|privileged"


@dataclasses.dataclass(frozen=True)
class Permission:
    name: str
    level: ProtectionLevel = ProtectionLevel.NORMAL
    description: str = ""


#: Actions only the system may originate.  Sending one from an unprivileged
#: app raises SecurityException at the activity-manager boundary -- "the
#: specified and secure behavior" per the paper.
PROTECTED_ACTIONS: FrozenSet[str] = frozenset(
    {
        "android.intent.action.BATTERY_LOW",
        "android.intent.action.BATTERY_OKAY",
        "android.intent.action.BATTERY_CHANGED",
        "android.intent.action.BOOT_COMPLETED",
        "android.intent.action.LOCKED_BOOT_COMPLETED",
        "android.intent.action.DEVICE_STORAGE_LOW",
        "android.intent.action.DEVICE_STORAGE_OK",
        "android.intent.action.ACTION_POWER_CONNECTED",
        "android.intent.action.ACTION_POWER_DISCONNECTED",
        "android.intent.action.ACTION_SHUTDOWN",
        "android.intent.action.REBOOT",
        "android.intent.action.MEDIA_MOUNTED",
        "android.intent.action.MEDIA_UNMOUNTED",
        "android.intent.action.MEDIA_REMOVED",
        "android.intent.action.MEDIA_EJECT",
        "android.intent.action.PACKAGE_ADDED",
        "android.intent.action.PACKAGE_REMOVED",
        "android.intent.action.PACKAGE_REPLACED",
        "android.intent.action.PACKAGE_RESTARTED",
        "android.intent.action.PACKAGE_DATA_CLEARED",
        "android.intent.action.UID_REMOVED",
        "android.intent.action.CONFIGURATION_CHANGED",
        "android.intent.action.LOCALE_CHANGED",
        "android.intent.action.TIMEZONE_CHANGED",
        "android.intent.action.TIME_SET",
        "android.intent.action.DATE_CHANGED",
        "android.intent.action.USER_PRESENT",
        "android.intent.action.SCREEN_ON",
        "android.intent.action.SCREEN_OFF",
        "android.intent.action.DREAMING_STARTED",
        "android.intent.action.DREAMING_STOPPED",
        "android.intent.action.AIRPLANE_MODE",
        "android.intent.action.NEW_OUTGOING_CALL",
        "android.intent.action.MY_PACKAGE_REPLACED",
        "android.net.conn.CONNECTIVITY_CHANGE",
        "android.net.wifi.STATE_CHANGE",
        "android.net.wifi.WIFI_STATE_CHANGED",
        "android.bluetooth.adapter.action.STATE_CHANGED",
        "android.bluetooth.device.action.ACL_CONNECTED",
        "android.bluetooth.device.action.ACL_DISCONNECTED",
        "android.os.action.DEVICE_IDLE_MODE_CHANGED",
        "android.os.action.POWER_SAVE_MODE_CHANGED",
        "com.google.android.clockwork.action.AMBIENT_STARTED",
        "com.google.android.clockwork.action.AMBIENT_STOPPED",
        "com.google.android.clockwork.home.action.RETAIL_MODE",
    }
)

#: Well-known permission objects, indexed by name.
_WELL_KNOWN = [
    Permission("android.permission.INTERNET", ProtectionLevel.NORMAL),
    Permission("android.permission.VIBRATE", ProtectionLevel.NORMAL),
    Permission("android.permission.WAKE_LOCK", ProtectionLevel.NORMAL),
    Permission("android.permission.BLUETOOTH", ProtectionLevel.NORMAL),
    Permission("android.permission.BODY_SENSORS", ProtectionLevel.DANGEROUS),
    Permission("android.permission.READ_CONTACTS", ProtectionLevel.DANGEROUS),
    Permission("android.permission.WRITE_CONTACTS", ProtectionLevel.DANGEROUS),
    Permission("android.permission.CALL_PHONE", ProtectionLevel.DANGEROUS),
    Permission("android.permission.READ_CALENDAR", ProtectionLevel.DANGEROUS),
    Permission("android.permission.WRITE_CALENDAR", ProtectionLevel.DANGEROUS),
    Permission("android.permission.ACCESS_FINE_LOCATION", ProtectionLevel.DANGEROUS),
    Permission("android.permission.RECORD_AUDIO", ProtectionLevel.DANGEROUS),
    Permission("android.permission.CAMERA", ProtectionLevel.DANGEROUS),
    Permission("android.permission.ACTIVITY_RECOGNITION", ProtectionLevel.DANGEROUS),
    Permission("android.permission.REBOOT", ProtectionLevel.PRIVILEGED),
    Permission("android.permission.SHUTDOWN", ProtectionLevel.PRIVILEGED),
    Permission("android.permission.DEVICE_POWER", ProtectionLevel.SIGNATURE),
    Permission("android.permission.BIND_DEVICE_ADMIN", ProtectionLevel.SIGNATURE),
    Permission("android.permission.WRITE_SECURE_SETTINGS", ProtectionLevel.PRIVILEGED),
    Permission("android.permission.INSTALL_PACKAGES", ProtectionLevel.PRIVILEGED),
    Permission("com.google.android.wearable.permission.BIND_COMPLICATION_PROVIDER", ProtectionLevel.SIGNATURE),
    Permission("com.google.android.clockwork.permission.AMBIENT", ProtectionLevel.SIGNATURE),
    Permission("com.google.android.fitness.permission.FITNESS_DATA", ProtectionLevel.DANGEROUS),
]

PERMISSION_GRANTED = 0
PERMISSION_DENIED = -1


class PermissionManager:
    """Tracks declared permissions and per-package grants."""

    def __init__(self) -> None:
        self._permissions: Dict[str, Permission] = {p.name: p for p in _WELL_KNOWN}
        self._grants: Dict[str, Set[str]] = {}
        self._privileged_packages: Set[str] = {"android", "com.android.systemui"}

    # -- declaration -------------------------------------------------------------
    def declare(self, permission: Permission) -> None:
        """Register a custom (app-declared) permission."""
        self._permissions[permission.name] = permission

    def is_known(self, name: str) -> bool:
        return name in self._permissions

    def get(self, name: str) -> Optional[Permission]:
        return self._permissions.get(name)

    def all_names(self) -> Iterable[str]:
        return tuple(self._permissions)

    # -- grants ----------------------------------------------------------------
    def grant(self, package: str, permission_name: str) -> None:
        """Grant *permission_name* to *package*.

        Unknown permissions are rejected the way ``pm grant`` rejects them --
        the paper calls this out as an example of good input validation.
        """
        if permission_name not in self._permissions:
            raise ValueError(f"Unknown permission: {permission_name}")
        self._grants.setdefault(package, set()).add(permission_name)

    def revoke(self, package: str, permission_name: str) -> None:
        self._grants.get(package, set()).discard(permission_name)

    def mark_privileged(self, package: str) -> None:
        """System/priv-app packages may send protected actions."""
        self._privileged_packages.add(package)

    def is_privileged(self, package: str) -> bool:
        return package in self._privileged_packages

    # -- checks ----------------------------------------------------------------
    def check_permission(self, package: str, permission_name: str) -> int:
        """``PackageManager.checkPermission`` analogue."""
        if self.is_privileged(package):
            return PERMISSION_GRANTED
        if permission_name in self._grants.get(package, set()):
            perm = self._permissions.get(permission_name)
            if perm is not None and perm.level in (
                ProtectionLevel.SIGNATURE,
                ProtectionLevel.PRIVILEGED,
            ):
                # Third-party grants of signature permissions never take
                # effect; only the platform signature satisfies them.
                return PERMISSION_DENIED
            return PERMISSION_GRANTED
        return PERMISSION_DENIED

    def is_protected_action(self, action: Optional[str]) -> bool:
        return action is not None and action in PROTECTED_ACTIONS

    def may_send_action(self, sender_package: str, action: Optional[str]) -> bool:
        """May *sender_package* originate an intent with *action*?"""
        if not self.is_protected_action(action):
            return True
        return self.is_privileged(sender_package)

    def granted_permissions(self, package: str) -> FrozenSet[str]:
        return frozenset(self._grants.get(package, set()))
