"""The sensor stack: ``SensorManager`` over a native ``SensorService``.

Health and fitness apps -- the category the paper singles out -- read the
wearable's sensors either through the Google Fit API or directly through
``SensorManager``.  The first of the paper's two device reboots happened on
this path:

    "a sequence of malformed intents to a health app, which interacts with
    heart rate sensor using SensorManager […] the application experienced
    unresponsiveness (ANR) which explains the SIGABRT sent by the system to
    shutdown the SensorService process /system/lib/libsensorservice.so.
    Since this is the core process which handles Sensor access on AW, the
    system was left in an unstable state and the device rebooted."

So the model is: apps register listeners with the native sensor service; if
a client process ANRs while holding a listener, its stalled connection wedges
the service's event queue and the system kills the service with SIGABRT.
Losing this *core native* service is what the system server's health model
treats as reboot-grade damage.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING, Dict, List, Optional, Set

from repro.android.binder import IBinder
from repro.android.jtypes import (
    DeadObjectException,
    IllegalArgumentException,
    sigabrt,
)
from repro.android.log import TAG_SENSOR, Logcat
from repro.android.process import ProcessRecord, ProcessTable

if TYPE_CHECKING:  # pragma: no cover - typing-only import
    from repro.android.system_server import SystemServer

SENSOR_SERVICE_PROCESS = "/system/lib/libsensorservice.so"

# Sensor type constants (android.hardware.Sensor.TYPE_*).
TYPE_ACCELEROMETER = 1
TYPE_GYROSCOPE = 4
TYPE_HEART_RATE = 21
TYPE_STEP_COUNTER = 19
TYPE_STEP_DETECTOR = 18


@dataclasses.dataclass(frozen=True)
class Sensor:
    sensor_type: int
    name: str
    vendor: str = "repro"

    def __str__(self) -> str:
        return f"{self.name} (type={self.sensor_type})"


#: Sensors present on the simulated wearable.
WEARABLE_SENSORS = (
    Sensor(TYPE_ACCELEROMETER, "BMI160 Accelerometer"),
    Sensor(TYPE_GYROSCOPE, "BMI160 Gyroscope"),
    Sensor(TYPE_HEART_RATE, "PAH8001 Heart Rate"),
    Sensor(TYPE_STEP_COUNTER, "Step Counter"),
    Sensor(TYPE_STEP_DETECTOR, "Step Detector"),
)


@dataclasses.dataclass
class _Listener:
    client_process: str
    sensor_type: int


class SensorService:
    """The native sensor service process and its listener table."""

    def __init__(
        self, processes: ProcessTable, logcat: Logcat, runtime=None, clock=None
    ) -> None:
        self._processes = processes
        self._logcat = logcat
        self._sensors: Dict[int, Sensor] = {s.sensor_type: s for s in WEARABLE_SENSORS}
        self._listeners: List[_Listener] = []
        self.process = processes.get_or_start(
            SENSOR_SERVICE_PROCESS, package="android", is_system=True, is_native=True
        )
        self._system_server: Optional["SystemServer"] = None
        #: Chaos-plane access (``None`` for bare unit-test construction).
        self._runtime = runtime
        self._clock = clock

    def attach_system_server(self, system_server: "SystemServer") -> None:
        self._system_server = system_server

    # -- service side -----------------------------------------------------------
    @property
    def alive(self) -> bool:
        return self.process.alive

    def sensors(self) -> List[Sensor]:
        return list(self._sensors.values())

    def get_default_sensor(self, sensor_type: int) -> Optional[Sensor]:
        return self._sensors.get(sensor_type)

    def register_listener(self, client_process: str, sensor_type: int) -> None:
        if not self.alive:
            raise DeadObjectException("SensorService is dead")
        if sensor_type not in self._sensors:
            raise IllegalArgumentException(f"No sensor of type {sensor_type}")
        # Registrations happen inside app lifecycles, so the chaos hook
        # fires at any dispatch depth: a dead service mid-lifecycle is a
        # genuine app-visible failure (the paper's first reboot started on
        # exactly this path).  Corrupted replies silently drop or duplicate
        # the registration.
        if self._runtime is not None and self._clock is not None:
            plane = self._runtime.faults
            if plane.armed:
                plane.check_service(self._clock, "sensor")
                if plane.take_corruption(self._clock, "drop_listener"):
                    self._logcat.w(
                        TAG_SENSOR,
                        f"dropped listener registration: {client_process}"
                        f" -> type {sensor_type} (corrupted reply)",
                        pid=self.process.pid,
                    )
                    return
                if plane.take_corruption(self._clock, "dup_listener"):
                    self._listeners.append(_Listener(client_process, sensor_type))
                    self._logcat.w(
                        TAG_SENSOR,
                        f"duplicated listener registration: {client_process}"
                        f" -> type {sensor_type} (corrupted reply)",
                        pid=self.process.pid,
                    )
        self._listeners.append(_Listener(client_process, sensor_type))
        self._logcat.d(
            TAG_SENSOR,
            f"registered listener: {client_process} -> type {sensor_type}",
            pid=self.process.pid,
        )

    def unregister_all(self, client_process: str) -> int:
        before = len(self._listeners)
        self._listeners = [l for l in self._listeners if l.client_process != client_process]
        return before - len(self._listeners)

    def listeners_of(self, client_process: str) -> List[_Listener]:
        return [l for l in self._listeners if l.client_process == client_process]

    def has_listeners(self, client_process: str) -> bool:
        return any(l.client_process == client_process for l in self._listeners)

    # -- failure escalation -----------------------------------------------------
    def on_client_anr(self, client: ProcessRecord) -> bool:
        """An ANR'd client wedges the event queue; the system SIGABRTs us.

        Returns True when the service was killed (reboot-grade damage).
        """
        if not self.alive or not self.has_listeners(client.name):
            return False
        self._logcat.e(
            TAG_SENSOR,
            f"event queue stalled by unresponsive client {client.name}",
            pid=self.process.pid,
        )
        signal = sigabrt(
            SENSOR_SERVICE_PROCESS,
            reason=f"sensor event queue wedged by {client.name}",
        )
        self._logcat.native_crash(signal, pid=self.process.pid)
        self.process.kill("SIGABRT")
        self._listeners.clear()
        if self._system_server is not None:
            self._system_server.on_native_service_death("sensorservice", signal)
        return True

    def restart(self) -> None:
        """Bring the native service back after a reboot."""
        self._listeners.clear()
        self.process = self._processes.get_or_start(
            SENSOR_SERVICE_PROCESS, package="android", is_system=True, is_native=True
        )


class SensorManager:
    """The app-facing manager, scoped to one client package/process.

    Obtained through ``context.get_system_service("sensor")``; the device
    hands each caller a thin per-process view of the shared service.
    """

    def __init__(self, service: SensorService, client_process: str) -> None:
        self._service = service
        self._client_process = client_process

    def get_default_sensor(self, sensor_type: int) -> Optional[Sensor]:
        if not self._service.alive:
            raise DeadObjectException("SensorService is dead")
        return self._service.get_default_sensor(sensor_type)

    def register_listener(self, sensor: Sensor) -> None:
        self._service.register_listener(self._client_process, sensor.sensor_type)

    def register_listener_by_type(self, sensor_type: int) -> None:
        self._service.register_listener(self._client_process, sensor_type)

    def unregister_all(self) -> int:
        return self._service.unregister_all(self._client_process)
