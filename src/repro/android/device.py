"""A bootable simulated Android device.

``Device`` wires every substrate piece together -- clock, logcat, permission
model, package manager, process table, activity manager, system server and
sensor stack -- into the thing the experiments hold in one hand: something
you can install apps on, throw intents at, and pull logs from over
:mod:`repro.android.adb`.

:class:`repro.wear.device.WearDevice` extends this with the Wear-specific
services (Ambient, Google Fit, complications, the Wearable MessageAPI).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

from repro.android.activity_manager import ActivityManager
from repro.android.clock import Clock
from repro.android.log import TAG_BOOT, TAG_SYSTEM, Logcat
from repro.android.package_manager import PackageInfo, PackageManager
from repro.android.permissions import PermissionManager
from repro.android.process import ProcessTable
from repro.android.runtime import RuntimeContext
from repro.android.sensor import SensorManager, SensorService
from repro.android.system_server import SystemServer

#: Virtual time a reboot costs (boot animation and all).
BOOT_DURATION_MS = 30_000.0

#: Virtual time a system_server bounce costs -- services restart in place,
#: far cheaper than a full reboot (no kernel, no boot animation).
SYSTEM_RESTART_DOWNTIME_MS = 5_000.0

#: Provider signature for named system services; receives the caller package.
ServiceProvider = Callable[["Device", str], Any]


def _sensor_service_provider(device: "Device", package: str) -> SensorManager:
    """Module-level provider so ``Device`` state stays picklable."""
    return SensorManager(device.sensor_service, package)


class Device:
    """One simulated Android device (phone or, via subclass, wearable)."""

    def __init__(
        self,
        name: str = "device",
        android_version: str = "7.1.1",
        logcat_capacity: Optional[int] = None,
        reboot_threshold: Optional[float] = None,
        runtime: Optional[RuntimeContext] = None,
        clock: Optional[Clock] = None,
    ) -> None:
        self.name = name
        self.android_version = android_version
        #: One shared context per device tree: every hook site below asks
        #: this object (not the process-wide module) for its planes.  Pass a
        #: pre-bound context to scope the device to a shard (repro.farm);
        #: the default unbound context falls back to the global handles.
        self.runtime = runtime if runtime is not None else RuntimeContext()
        #: The device's virtual timeline.  A caller may supply the clock --
        #: the fleet scheduler does, so it can advance a multiplexed pair's
        #: time between that pair's resumptions.
        self.clock = clock if clock is not None else Clock()
        self.logcat = Logcat(self.clock, capacity=logcat_capacity, runtime=self.runtime)
        self.permissions = PermissionManager()
        self.packages = PackageManager(self.permissions)
        self.packages.attach_device(self)
        self.processes = ProcessTable(self.clock, logcat=self.logcat, runtime=self.runtime)
        self.activity_manager = ActivityManager(
            device=self,
            packages=self.packages,
            permissions=self.permissions,
            processes=self.processes,
            logcat=self.logcat,
        )
        kwargs = {} if reboot_threshold is None else {"reboot_threshold": reboot_threshold}
        self.system_server = SystemServer(self, self.clock, self.logcat, **kwargs)
        self.activity_manager.add_health_hooks(self.system_server)
        self.sensor_service = SensorService(
            self.processes, self.logcat, runtime=self.runtime, clock=self.clock
        )
        self.system_server.attach_sensor_service(self.sensor_service)
        self._service_providers: Dict[str, ServiceProvider] = {}
        self.register_system_service("sensor", _sensor_service_provider)
        self.boot_count = 1
        #: True only while a reboot is tearing processes down.
        self.rebooting = False
        self.logcat.i(TAG_BOOT, f"Starting Android runtime ({android_version}) on {name}")
        self.logcat.i(TAG_BOOT, "Boot completed")

    # -- system services ----------------------------------------------------------
    def register_system_service(self, service_name: str, provider: ServiceProvider) -> None:
        self._service_providers[service_name] = provider

    def get_system_service(self, service_name: str, package: str) -> Any:
        provider = self._service_providers.get(service_name)
        if provider is None:
            return None
        return provider(self, package)

    def has_system_service(self, service_name: str) -> bool:
        return service_name in self._service_providers

    # -- app management ------------------------------------------------------------
    def install(self, package: PackageInfo) -> None:
        self.packages.install(package)
        self.logcat.i("PackageManager", f"Package {package.package} installed")

    def install_all(self, packages) -> None:
        for package in packages:
            self.install(package)

    # -- reboot ---------------------------------------------------------------------
    def perform_reboot(self, reason: str) -> None:
        """Reboot the device (called by the system server's escalation)."""
        self.rebooting = True
        self.logcat.reboot_marker(reason)
        self.processes.clear()
        self.activity_manager.reset_runtime_state()
        self.clock.sleep(BOOT_DURATION_MS)
        self.sensor_service.restart()
        self.system_server.after_reboot()
        self.boot_count += 1
        self._after_reboot()
        self.rebooting = False

    def restart_system_server(self, reason: str) -> None:
        """Bounce system_server in place (chaos plane's SYSTEM_RESTART).

        Every service restarts and registered binders/listeners must
        re-attach, but the device never goes down: no reboot marker, and
        ``boot_count`` is untouched -- the paper's reboot counts and the
        fuzzer's reboot handling only react to real reboots.
        """
        self.logcat.w(TAG_SYSTEM, f"system_server died: {reason}")
        self.processes.clear()
        self.activity_manager.reset_runtime_state()
        self.activity_manager.foreground = None
        self.clock.sleep(SYSTEM_RESTART_DOWNTIME_MS)
        self.sensor_service.restart()
        self.system_server.on_soft_restart(reason)
        self._after_reboot()

    def _after_reboot(self) -> None:
        """Subclass hook: restart device-family specific services."""

    # -- adb ------------------------------------------------------------------------
    @property
    def adb(self):
        """Lazy adb endpoint (import-cycle-free)."""
        from repro.android.adb import Adb

        return Adb(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Device {self.name} android={self.android_version} boots={self.boot_count}>"
