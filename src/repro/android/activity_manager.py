"""The activity manager: intent dispatch, crash handling, ANR detection.

This is the framework boundary the whole study pivots on.  Every one of the
~1.5M injected intents flows through :meth:`ActivityManager.start_activity`
or :meth:`ActivityManager.start_service`, which perform -- in order -- the
same checks the real service performs:

1. **Resolution.**  Explicit intents resolve through the package manager;
   a missing component raises ``ActivityNotFoundException`` (activities) or
   returns null (services), surfaced to the *caller*, not the target.
2. **Permission enforcement.**  Protected system actions from unprivileged
   senders, non-exported targets, and permission-guarded components all
   raise ``SecurityException`` and the intent is dropped -- the paper's
   dominant (81.3%) exception class, and its *No Effect* manifestation.
3. **Delivery.**  The target process is started if needed, the component is
   instantiated (through the behaviour-model factory) and its lifecycle
   callbacks run on the process main thread.
4. **Failure containment.**  An uncaught throwable produces the
   ``FATAL EXCEPTION: main`` logcat block and kills the process (*Crash*);
   a handler that exceeds the ANR timeout produces an ANR block (*Hang*);
   either event is reported to the system server's aging model, which is
   how repeated failures escalate into the paper's two device *Reboots*.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Protocol, Tuple

from repro.android.component import (
    Activity,
    ActivityState,
    BroadcastReceiver,
    Component,
    ComponentInfo,
    ComponentKind,
    Service,
    ServiceState,
    runtime_class_for,
)
from repro.android.context import Context
from repro.android.intent import ComponentName, Intent
from repro.android.jtypes import (
    ActivityNotFoundException,
    SecurityException,
    Throwable,
)
from repro.android.log import TAG_ACTIVITY_MANAGER, Logcat
from repro.android.package_manager import PackageManager
from repro.android.permissions import PERMISSION_GRANTED, PermissionManager
from repro.android.process import (
    DEFAULT_ANR_TIMEOUT_MS,
    MainThreadTask,
    ProcessRecord,
    ProcessTable,
)
from repro.telemetry.metrics import AM_DISPATCHES, ANR_LATENCY
from repro.telemetry.record import CounterSite, HistogramSite

if TYPE_CHECKING:  # pragma: no cover - typing-only import
    from repro.android.device import Device

#: Dispatch counting sits on the path of every injected intent; the site
#: resolves each entry point to a bound handle once per telemetry session.
_DISPATCH_SITE = CounterSite(
    AM_DISPATCHES,
    "Intent dispatches through ActivityManagerService, by entry point.",
    ("entry",),
)

_ANR_SITE = HistogramSite(
    ANR_LATENCY,
    "Main-thread blockage (virtual ms) measured when the ANR"
    " watchdog fired.",
    ("package",),
)


class SystemHealthHooks(Protocol):
    """Callbacks into the system server's health/aging model."""

    def on_app_crash(self, process: ProcessRecord, info: ComponentInfo, throwable: Throwable) -> None:
        ...  # pragma: no cover - protocol

    def on_app_anr(self, process: ProcessRecord, info: ComponentInfo, reason: str) -> None:
        ...  # pragma: no cover - protocol

    def on_start_failure(self, info: ComponentInfo, throwable: Throwable) -> None:
        ...  # pragma: no cover - protocol


#: Factory signature for behaviour-model components.
ComponentFactory = Callable[[ComponentInfo, Context], Component]


@dataclasses.dataclass
class DispatchResult:
    """What happened when one intent was dispatched (as seen by the system)."""

    delivered: bool
    crashed: bool = False
    anr: bool = False
    throwable: Optional[Throwable] = None


class ActivityManager:
    """Simulated ``ActivityManagerService``."""

    def __init__(
        self,
        device: "Device",
        packages: PackageManager,
        permissions: PermissionManager,
        processes: ProcessTable,
        logcat: Logcat,
        anr_timeout_ms: float = DEFAULT_ANR_TIMEOUT_MS,
    ) -> None:
        self._device = device
        self._packages = packages
        self._permissions = permissions
        self._processes = processes
        self._logcat = logcat
        self.anr_timeout_ms = anr_timeout_ms
        self._factories: Dict[str, ComponentFactory] = {}
        self._health_hooks: List[SystemHealthHooks] = []
        #: Live component instances keyed by (process name, component string).
        self._live: Dict[tuple, Component] = {}
        self.dispatch_count = 0
        #: >0 while a component lifecycle is running; transport faults only
        #: fire on outermost dispatches, so behaviour-internal calls (which
        #: the real binder driver would also reach over in-process paths)
        #: never see an injected failure mid-lifecycle.
        self._dispatch_depth = 0
        #: The activity currently holding window focus (for UI events).
        self.foreground: Optional[ComponentInfo] = None
        # Bound dispatch-counter handles, cached per registry identity
        # (same discipline as Logcat): binding per dispatch would put an
        # intern + dict build on every injection.  The two injection-path
        # entries get dedicated lazily-bound slots so counting them is a
        # pointer compare and a slot store, with no call and no dict hit.
        self._dispatch_registry = None
        self._dispatch_handles: Dict[str, object] = {}
        self._h_start_activity = None
        self._h_start_service = None

    # -- wiring -----------------------------------------------------------------
    def register_factory(self, behavior_key: str, factory: ComponentFactory) -> None:
        """Map a manifest ``behavior_key`` to a component factory."""
        self._factories[behavior_key] = factory

    def add_health_hooks(self, hooks: SystemHealthHooks) -> None:
        self._health_hooks.append(hooks)

    def _invalidate_dispatch_handles(self, metrics) -> None:
        """A different registry is live: drop every cached dispatch handle.

        Both the generic ``_dispatch_handles`` map and the dedicated
        injection-path slots key off ``_dispatch_registry``, so they must
        be invalidated together.  Handles stay lazily bound: a series only
        appears in exports once its entry point actually dispatches.
        """
        self._dispatch_handles = {}
        self._h_start_activity = None
        self._h_start_service = None
        self._dispatch_registry = metrics

    def _count_dispatch(self, entry: str, t=None) -> None:
        self.dispatch_count += 1
        if t is None:
            t = self._device.runtime.telemetry
        if t.enabled:
            metrics = t.metrics
            if metrics is not self._dispatch_registry:
                self._invalidate_dispatch_handles(metrics)
            handle = self._dispatch_handles.get(entry)
            if handle is None:
                handle = _DISPATCH_SITE.bind(metrics, (entry,))
                self._dispatch_handles[entry] = handle
            # Direct slot store: this is BoundCounter.inc(1) with the call
            # overhead shaved off the per-injection path.
            handle.pending += 1

    @property
    def outermost_dispatch(self) -> bool:
        """True outside any component lifecycle (the fuzzer's IPC edge)."""
        return self._dispatch_depth == 0

    def _transport_fault_check(self) -> None:
        """Fire a due transport or OS-service fault on an *outermost* dispatch.

        The fuzzer's transaction into ``IActivityManager`` is the IPC edge
        the chaos plane severs; once a lifecycle is executing, nested
        dispatches stay in-process and are not faulted here.  After the
        transport check, the service boundary fires: outage windows,
        system_server restarts, and missing-method compat mismatches.
        """
        if self._dispatch_depth > 0:
            return
        plane = self._device.runtime.faults
        if plane.armed:
            plane.on_transact(self._device.clock, "android.app.IActivityManager")
            plane.on_system_service(self._device, "activity")

    # -- public API -----------------------------------------------------------------
    def start_activity(self, caller_package: str, intent: Intent) -> DispatchResult:
        """``Context.startActivity``: resolve, check, deliver, contain."""
        t = self._device.runtime.telemetry
        profiler = t.profiler
        if profiler.enabled:
            profiler.enter("am")
            try:
                return self._start_activity(caller_package, intent, t)
            finally:
                profiler.exit()
        return self._start_activity(caller_package, intent, t)

    def _start_activity(self, caller_package: str, intent: Intent, t) -> DispatchResult:
        self._transport_fault_check()
        # Inlined _count_dispatch("start_activity"): this runs once per
        # injected activity intent, so the count is a pointer compare and a
        # slot store on a dedicated handle, with no call and no dict hit.
        self.dispatch_count += 1
        if t.enabled:
            if t.metrics is not self._dispatch_registry:
                self._invalidate_dispatch_handles(t.metrics)
            handle = self._h_start_activity
            if handle is None:
                handle = _DISPATCH_SITE.bind(t.metrics, ("start_activity",))
                self._h_start_activity = handle
            handle.pending += 1
        info = self._resolve_activity(intent)
        if info is None:
            raise ActivityNotFoundException(
                f"No Activity found to handle {intent.to_log_string()}"
            )
        self._enforce_permissions(caller_package, intent, info)
        return self._deliver_to_activity(info, intent)

    def start_service(self, caller_package: str, intent: Intent) -> Optional[ComponentName]:
        """``Context.startService``: returns the component name or ``None``."""
        name, _ = self.start_service_with_result(caller_package, intent)
        return name

    def start_service_with_result(
        self, caller_package: str, intent: Intent
    ) -> Tuple[Optional[ComponentName], DispatchResult]:
        """Like :meth:`start_service`, but also exposes the dispatch outcome.

        The real API only returns the component name; the extra result is
        simulator introspection used by the fuzzer's in-flight counters
        (the authoritative classification still comes from logcat).
        """
        t = self._device.runtime.telemetry
        profiler = t.profiler
        if profiler.enabled:
            profiler.enter("am")
            try:
                return self._start_service_with_result(caller_package, intent, t)
            finally:
                profiler.exit()
        return self._start_service_with_result(caller_package, intent, t)

    def _start_service_with_result(
        self, caller_package: str, intent: Intent, t
    ) -> Tuple[Optional[ComponentName], DispatchResult]:
        self._transport_fault_check()
        # Inlined _count_dispatch("start_service"); see _start_activity.
        self.dispatch_count += 1
        if t.enabled:
            if t.metrics is not self._dispatch_registry:
                self._invalidate_dispatch_handles(t.metrics)
            handle = self._h_start_service
            if handle is None:
                handle = _DISPATCH_SITE.bind(t.metrics, ("start_service",))
                self._h_start_service = handle
            handle.pending += 1
        info = self._resolve_service(intent)
        if info is None:
            # Matching the framework: unknown service logs and returns null.
            self._logcat.w(
                TAG_ACTIVITY_MANAGER,
                f"Unable to start service {intent.to_log_string()}: not found",
            )
            return None, DispatchResult(delivered=False)
        self._enforce_permissions(caller_package, intent, info)
        result = self._deliver_to_service(info, intent, bind=False)
        return info.name, result

    def send_broadcast(self, caller_package: str, intent: Intent) -> int:
        """``Context.sendBroadcast``: deliver to matching receivers.

        QGJ proper targets activities and services ("they form the large
        majority of the components on AW apps"), but its ancestor JJB also
        fuzzed broadcast receivers; this entry point keeps that capability.
        Explicit broadcasts go to the named receiver; implicit ones to every
        matching exported receiver.  Returns the number of receivers that
        got the intent.
        """
        self._count_dispatch("send_broadcast")
        if not self._permissions.may_send_action(caller_package, intent.action):
            detail = (
                f"broadcasting protected action {intent.action} from {caller_package}"
            )
            self._logcat.security_denial(pid=0, detail=detail)
            raise SecurityException(f"Permission Denial: {detail}")
        if intent.component is not None:
            info = self._packages.resolve_component(intent.component)
            if info is None or info.kind != ComponentKind.RECEIVER:
                return 0
            targets = [info]
        else:
            targets = [
                info
                for info in self._packages.all_components(kinds=(ComponentKind.RECEIVER,))
                if info.exported
                and any(f.matches(intent) for f in info.intent_filters)
            ]
        delivered = 0
        for info in targets:
            try:
                self._enforce_permissions(caller_package, intent, info)
            except SecurityException:
                continue
            proc = self._processes.get_or_start(info.effective_process(), info.package)
            component = self._get_or_create(info, proc)
            if not isinstance(component, BroadcastReceiver):
                continue

            def receive(receiver=component):
                receiver.perform_receive(intent)

            result = self._run_contained(proc, info, component, receive, "receiver")
            if result.delivered:
                delivered += 1
        return delivered

    def bind_service(self, caller_package: str, intent: Intent) -> bool:
        """``Context.bindService``: True when binding was initiated."""
        self._count_dispatch("bind_service")
        info = self._resolve_service(intent)
        if info is None:
            return False
        self._enforce_permissions(caller_package, intent, info)
        result = self._deliver_to_service(info, intent, bind=True)
        return result.delivered and not result.crashed

    def force_stop(self, package: str) -> int:
        killed = self._processes.kill_package(package)
        self._live = {
            key: comp for key, comp in self._live.items() if comp.info.package != package
        }
        if killed:
            self._logcat.i(TAG_ACTIVITY_MANAGER, f"Force stopping {package}: {killed} processes")
        return killed

    def live_component(self, info: ComponentInfo) -> Optional[Component]:
        """The live runtime instance for *info*, if its process is alive."""
        key = (info.effective_process(), info.name.flatten_to_string())
        comp = self._live.get(key)
        if comp is None:
            return None
        proc = self._processes.get(info.effective_process())
        if proc is None:
            del self._live[key]
            return None
        return comp

    def reset_runtime_state(self) -> None:
        """Drop live component instances (used across reboots)."""
        self._live.clear()

    def __getstate__(self) -> dict:
        # Telemetry never survives a pickle (same contract as Logcat and
        # RuntimeContext): cached bound handles would smuggle the live
        # registry into checkpoint snapshots.  They re-resolve on use.
        state = self.__dict__.copy()
        state["_dispatch_registry"] = None
        state["_dispatch_handles"] = {}
        state["_h_start_activity"] = None
        state["_h_start_service"] = None
        return state

    # -- resolution ---------------------------------------------------------------
    def _resolve_activity(self, intent: Intent) -> Optional[ComponentInfo]:
        if intent.component is not None:
            info = self._packages.resolve_component(intent.component)
            if info is None or info.kind != ComponentKind.ACTIVITY:
                return None
            return info
        candidates = self._packages.query_intent_activities(intent)
        return candidates[0] if candidates else None

    def _resolve_service(self, intent: Intent) -> Optional[ComponentInfo]:
        if intent.component is None:
            # Android 5+ forbids implicit service intents.
            raise SecurityException(
                f"Service Intent must be explicit: {intent.to_log_string()}"
            )
        info = self._packages.resolve_component(intent.component)
        if info is None or info.kind != ComponentKind.SERVICE:
            return None
        return info

    # -- permission enforcement --------------------------------------------------
    def _enforce_permissions(
        self, caller_package: str, intent: Intent, info: ComponentInfo
    ) -> None:
        if not self._permissions.may_send_action(caller_package, intent.action):
            detail = (
                f"broadcasting protected action {intent.action} from {caller_package}"
                f" to {info.name.flatten_to_short_string()}"
            )
            self._logcat.security_denial(pid=0, detail=detail)
            raise SecurityException(f"Permission Denial: {detail}")
        same_package = caller_package == info.package
        privileged_caller = self._permissions.is_privileged(caller_package)
        if not info.exported and not same_package and not privileged_caller:
            detail = (
                f"starting {intent.to_log_string()} from {caller_package}"
                f" not exported from uid of {info.package}"
            )
            self._logcat.security_denial(pid=0, detail=detail)
            raise SecurityException(f"Permission Denial: {detail}")
        if info.permission is not None and not same_package:
            granted = (
                self._permissions.check_permission(caller_package, info.permission)
                == PERMISSION_GRANTED
            )
            if not granted:
                detail = (
                    f"starting {intent.to_log_string()} from {caller_package}"
                    f" requires {info.permission}"
                )
                self._logcat.security_denial(pid=0, detail=detail)
                raise SecurityException(f"Permission Denial: {detail}")

    # -- delivery -----------------------------------------------------------------
    def _instantiate(self, info: ComponentInfo, context: Context) -> Component:
        if info.behavior_key is not None:
            factory = self._factories.get(info.behavior_key)
            if factory is not None:
                return factory(info, context)
        return runtime_class_for(info.kind)(info, context)

    def _get_or_create(self, info: ComponentInfo, proc: ProcessRecord) -> Component:
        key = (proc.name, info.name.flatten_to_string())
        comp = self._live.get(key)
        if comp is None:
            context = Context(info.package, self._device)
            comp = self._instantiate(info, context)
            self._live[key] = comp
        return comp

    def _deliver_to_activity(self, info: ComponentInfo, intent: Intent) -> DispatchResult:
        proc = self._processes.get_or_start(info.effective_process(), info.package)
        component = self._get_or_create(info, proc)
        if not isinstance(component, Activity):
            raise ActivityNotFoundException(
                f"{info.name} is not an activity"
            )
        self._logcat.i(
            TAG_ACTIVITY_MANAGER,
            f"START u0 {{{intent.to_log_string()}}} from {proc.name}",
        )

        def lifecycle() -> None:
            if component.state == ActivityState.INITIALIZED:
                component.perform_create(intent)
                component.perform_start()
                component.perform_resume()
            elif component.state == ActivityState.RESUMED:
                component.perform_new_intent(intent)
            else:
                # Bring an existing (paused/stopped) instance back to front.
                component.perform_new_intent(intent)
                if component.state == ActivityState.PAUSED:
                    component.perform_resume()
                elif component.state == ActivityState.STOPPED:
                    component.perform_start()
                    component.perform_resume()

        result = self._run_contained(proc, info, component, lifecycle, "activity")
        if result.delivered and not result.crashed:
            self.foreground = info
        elif result.crashed and self.foreground is info:
            self.foreground = None
        return result

    def deliver_ui_event(self, kind: str, **params: object) -> DispatchResult:
        """Deliver a UI event to the foreground activity.

        Events with no focused window (or whose process died) are dropped,
        exactly like the input pipeline drops taps outside any window.
        """
        info = self.foreground
        if info is None:
            return DispatchResult(delivered=False)
        component = self.live_component(info)
        if component is None:
            self.foreground = None
            return DispatchResult(delivered=False)
        proc = self._processes.get(info.effective_process())
        if proc is None:
            self.foreground = None
            return DispatchResult(delivered=False)

        def handle() -> None:
            cost = component.on_ui_event(kind, **params)
            if isinstance(component, (Activity, Service)):
                component.handler_cost_ms += cost

        result = self._run_contained(proc, info, component, handle, "activity")
        if result.crashed and self.foreground is info:
            self.foreground = None
        return result

    def _deliver_to_service(
        self, info: ComponentInfo, intent: Intent, bind: bool
    ) -> DispatchResult:
        proc = self._processes.get_or_start(info.effective_process(), info.package)
        component = self._get_or_create(info, proc)
        if not isinstance(component, Service):
            self._logcat.w(TAG_ACTIVITY_MANAGER, f"{info.name} is not a service")
            return DispatchResult(delivered=False)

        def lifecycle() -> None:
            if component.state == ServiceState.INITIALIZED:
                component.perform_create()
            if bind:
                component.perform_bind(intent)
            else:
                component.perform_start_command(intent, component.start_count + 1)

        return self._run_contained(proc, info, component, lifecycle, "service")

    def _run_contained(
        self,
        proc: ProcessRecord,
        info: ComponentInfo,
        component: Component,
        lifecycle: Callable[[], None],
        kind: str,
    ) -> DispatchResult:
        """Run *lifecycle* on the main thread with crash/ANR containment."""
        cost_before = getattr(component, "handler_cost_ms", 0.0)
        task = MainThreadTask(
            description=f"{kind}:{info.name.flatten_to_short_string()}",
            run=lifecycle,
            duration_ms=0.5,
        )
        self._dispatch_depth += 1
        try:
            thrown = proc.run_main_task(task)
        finally:
            self._dispatch_depth -= 1
        if thrown is not None:
            if not thrown.frames:
                thrown.frames = [
                    # Give anonymous throwables a plausible app frame.
                    *component._throw_site("handleIntent", 1),
                ]
            thrown.with_frames(thrown.frames[:3], component_kind=kind)
            self._logcat.fatal_exception(proc.name, proc.pid, thrown)
            self._logcat.i(
                TAG_ACTIVITY_MANAGER,
                f"Process {proc.name} (pid {proc.pid}) has died",
            )
            self._drop_live_instances(proc)
            for hooks in self._health_hooks:
                hooks.on_app_crash(proc, info, thrown)
            return DispatchResult(delivered=True, crashed=True, throwable=thrown)

        cost = getattr(component, "handler_cost_ms", 0.0) - cost_before
        if cost > self.anr_timeout_ms:
            reason = (
                f"executing {kind} {info.name.flatten_to_short_string()}"
                f" (blocked {cost:.0f}ms)"
            )
            self._logcat.anr(proc.name, proc.pid, info.name.flatten_to_short_string(), reason)
            proc.record_anr(task.description, cost)
            t = self._device.runtime.telemetry
            if t.enabled:
                _ANR_SITE.bind(t.metrics, (info.package,)).observe(cost)
            # The blocked main thread stalls the process for the whole window.
            proc.clock.sleep(min(cost, 4 * self.anr_timeout_ms))
            for hooks in self._health_hooks:
                hooks.on_app_anr(proc, info, reason)
            return DispatchResult(delivered=True, anr=True)
        return DispatchResult(delivered=True)

    def _drop_live_instances(self, proc: ProcessRecord) -> None:
        self._live = {
            key: comp for key, comp in self._live.items() if key[0] != proc.name
        }
