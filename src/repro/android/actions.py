"""The platform's intent-action vocabulary and data-URI types.

QGJ's generational campaigns draw from "over 100 different Actions and 12
types of data URI (e.g., https, http, tel)" (Table I).  This registry is
that vocabulary.  It serves two masters:

* the **fuzzer** (:mod:`repro.qgj.campaigns`) samples actions and URI types
  from it to build semi-valid, blank, random, and extras campaigns;
* the **app behaviour models** (:mod:`repro.apps.behavior`) consult it to
  decide whether an incoming action is *known* (parseable) and whether an
  {action, scheme} pair is *compatible* -- the distinction that separates
  campaign A's "valid parts, invalid combination" inputs from campaign C's
  outright garbage.

Keeping one shared table keeps the two sides honest: the fuzzer's notion of
"valid" is exactly the platform's.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Optional, Tuple

from repro.android.uri import Uri

# ---------------------------------------------------------------------------
# Actions.  Grouped the way the Android API groups them; 100+ total.
# ---------------------------------------------------------------------------

_STANDARD_ACTIVITY_ACTIONS: Tuple[str, ...] = (
    "android.intent.action.MAIN",
    "android.intent.action.VIEW",
    "android.intent.action.EDIT",
    "android.intent.action.PICK",
    "android.intent.action.DIAL",
    "android.intent.action.CALL",
    "android.intent.action.CALL_BUTTON",
    "android.intent.action.SEND",
    "android.intent.action.SENDTO",
    "android.intent.action.SEND_MULTIPLE",
    "android.intent.action.INSERT",
    "android.intent.action.INSERT_OR_EDIT",
    "android.intent.action.DELETE",
    "android.intent.action.GET_CONTENT",
    "android.intent.action.OPEN_DOCUMENT",
    "android.intent.action.CREATE_DOCUMENT",
    "android.intent.action.OPEN_DOCUMENT_TREE",
    "android.intent.action.ATTACH_DATA",
    "android.intent.action.RUN",
    "android.intent.action.SYNC",
    "android.intent.action.CHOOSER",
    "android.intent.action.ALL_APPS",
    "android.intent.action.SET_WALLPAPER",
    "android.intent.action.SEARCH",
    "android.intent.action.WEB_SEARCH",
    "android.intent.action.ASSIST",
    "android.intent.action.VOICE_COMMAND",
    "android.intent.action.FACTORY_TEST",
    "android.intent.action.SHOW_APP_INFO",
    "android.intent.action.PROCESS_TEXT",
    "android.intent.action.QUICK_VIEW",
    "android.intent.action.TRANSLATE",
    "android.intent.action.DEFINE",
    "android.intent.action.PASTE",
    "android.intent.action.MANAGE_NETWORK_USAGE",
    "android.intent.action.POWER_USAGE_SUMMARY",
)

_SETTINGS_ACTIONS: Tuple[str, ...] = (
    "android.settings.SETTINGS",
    "android.settings.WIFI_SETTINGS",
    "android.settings.BLUETOOTH_SETTINGS",
    "android.settings.DATE_SETTINGS",
    "android.settings.LOCALE_SETTINGS",
    "android.settings.INPUT_METHOD_SETTINGS",
    "android.settings.DISPLAY_SETTINGS",
    "android.settings.SOUND_SETTINGS",
    "android.settings.APPLICATION_SETTINGS",
    "android.settings.APPLICATION_DETAILS_SETTINGS",
    "android.settings.MANAGE_APPLICATIONS_SETTINGS",
    "android.settings.SECURITY_SETTINGS",
    "android.settings.LOCATION_SOURCE_SETTINGS",
    "android.settings.ACCESSIBILITY_SETTINGS",
    "android.settings.BATTERY_SAVER_SETTINGS",
    "android.settings.AIRPLANE_MODE_SETTINGS",
)

_MEDIA_ACTIONS: Tuple[str, ...] = (
    "android.media.action.IMAGE_CAPTURE",
    "android.media.action.VIDEO_CAPTURE",
    "android.media.action.STILL_IMAGE_CAMERA",
    "android.media.action.VIDEO_CAMERA",
    "android.media.action.MEDIA_PLAY_FROM_SEARCH",
    "android.intent.action.MEDIA_BUTTON",
    "android.intent.action.MUSIC_PLAYER",
    "android.provider.MediaStore.RECORD_SOUND",
)

_PROVIDER_ACTIONS: Tuple[str, ...] = (
    "android.provider.Telephony.SMS_RECEIVED",
    "android.provider.Telephony.SMS_DELIVER",
    "android.provider.Contacts.SEARCH_SUGGESTION_CLICKED",
    "android.provider.calendar.action.HANDLE_CUSTOM_EVENT",
    "android.provider.action.QUICK_CONTACT",
    "android.app.action.ADD_DEVICE_ADMIN",
    "android.app.action.SET_NEW_PASSWORD",
    "android.appwidget.action.APPWIDGET_CONFIGURE",
    "android.appwidget.action.APPWIDGET_UPDATE",
    "android.nfc.action.NDEF_DISCOVERED",
    "android.nfc.action.TAG_DISCOVERED",
    "android.speech.action.RECOGNIZE_SPEECH",
    "android.speech.action.WEB_SEARCH",
    "android.speech.tts.engine.CHECK_TTS_DATA",
    "android.bluetooth.adapter.action.REQUEST_ENABLE",
    "android.bluetooth.adapter.action.REQUEST_DISCOVERABLE",
)

_BROADCAST_ACTIONS: Tuple[str, ...] = (
    # Protected broadcast actions (see repro.android.permissions); QGJ sends
    # them anyway -- provoking the SecurityExceptions that dominate the logs.
    "android.intent.action.BATTERY_LOW",
    "android.intent.action.BATTERY_OKAY",
    "android.intent.action.BATTERY_CHANGED",
    "android.intent.action.BOOT_COMPLETED",
    "android.intent.action.LOCKED_BOOT_COMPLETED",
    "android.intent.action.DEVICE_STORAGE_LOW",
    "android.intent.action.DEVICE_STORAGE_OK",
    "android.intent.action.ACTION_POWER_CONNECTED",
    "android.intent.action.ACTION_POWER_DISCONNECTED",
    "android.intent.action.ACTION_SHUTDOWN",
    "android.intent.action.REBOOT",
    "android.intent.action.MEDIA_MOUNTED",
    "android.intent.action.MEDIA_UNMOUNTED",
    "android.intent.action.MEDIA_REMOVED",
    "android.intent.action.MEDIA_EJECT",
    "android.intent.action.PACKAGE_ADDED",
    "android.intent.action.PACKAGE_REMOVED",
    "android.intent.action.PACKAGE_REPLACED",
    "android.intent.action.PACKAGE_RESTARTED",
    "android.intent.action.PACKAGE_DATA_CLEARED",
    "android.intent.action.UID_REMOVED",
    "android.intent.action.CONFIGURATION_CHANGED",
    "android.intent.action.LOCALE_CHANGED",
    "android.intent.action.TIMEZONE_CHANGED",
    "android.intent.action.TIME_SET",
    "android.intent.action.DATE_CHANGED",
    "android.intent.action.USER_PRESENT",
    "android.intent.action.SCREEN_ON",
    "android.intent.action.SCREEN_OFF",
    "android.intent.action.DREAMING_STARTED",
    "android.intent.action.DREAMING_STOPPED",
    "android.intent.action.AIRPLANE_MODE",
    "android.intent.action.NEW_OUTGOING_CALL",
    "android.intent.action.MY_PACKAGE_REPLACED",
    "android.net.conn.CONNECTIVITY_CHANGE",
    "android.net.wifi.STATE_CHANGE",
    "android.net.wifi.WIFI_STATE_CHANGED",
    "android.bluetooth.adapter.action.STATE_CHANGED",
    "android.bluetooth.device.action.ACL_CONNECTED",
    "android.bluetooth.device.action.ACL_DISCONNECTED",
    "android.os.action.DEVICE_IDLE_MODE_CHANGED",
    "android.os.action.POWER_SAVE_MODE_CHANGED",
)

_WEAR_ACTIONS: Tuple[str, ...] = (
    "com.google.android.clockwork.action.AMBIENT_STARTED",
    "com.google.android.clockwork.action.AMBIENT_STOPPED",
    "com.google.android.clockwork.home.action.RETAIL_MODE",
    "com.google.android.wearable.action.VOICE_INPUT",
    "com.google.android.gms.fitness.TRACK",
    "com.google.android.gms.fitness.VIEW",
    "com.google.android.gms.fitness.VIEW_GOAL",
    "vnd.google.fitness.ACTION_ALL_APP",
    "vnd.google.fitness.TRACK",
    "vnd.google.fitness.VIEW",
    "android.support.wearable.complications.ACTION_COMPLICATION_UPDATE_REQUEST",
)

#: Every action QGJ knows, in a deterministic order.
ALL_ACTIONS: Tuple[str, ...] = (
    _STANDARD_ACTIVITY_ACTIONS
    + _SETTINGS_ACTIONS
    + _MEDIA_ACTIONS
    + _PROVIDER_ACTIONS
    + _BROADCAST_ACTIONS
    + _WEAR_ACTIONS
)

KNOWN_ACTIONS: FrozenSet[str] = frozenset(ALL_ACTIONS)

# ---------------------------------------------------------------------------
# Data URI types.  Twelve, as in the paper, each with a canonical sample.
# ---------------------------------------------------------------------------

URI_SAMPLES: Dict[str, str] = {
    "https": "https://foo.com/",
    "http": "http://foo.com/index.html",
    "tel": "tel:123",
    "sms": "sms:5551234",
    "smsto": "smsto:5551234",
    "mailto": "mailto:someone@example.com",
    "content": "content://contacts/people/1",
    "file": "file:///sdcard/download/report.pdf",
    "geo": "geo:40.4237,-86.9212",
    "market": "market://details?id=com.example",
    "voicemail": "voicemail:",
    "ssh": "ssh://host.example.com:22",
}

URI_TYPES: Tuple[str, ...] = tuple(URI_SAMPLES)

assert len(URI_TYPES) == 12, "the paper configures exactly 12 data URI types"

# ---------------------------------------------------------------------------
# Action/scheme compatibility: campaign A's "the combination of them may be
# invalid" is defined against this table, and campaign D's valid pairs are
# drawn from it.
# ---------------------------------------------------------------------------

_COMPATIBLE: Dict[str, FrozenSet[str]] = {
    "android.intent.action.VIEW": frozenset(
        {"https", "http", "content", "file", "geo", "market", "tel", "mailto"}
    ),
    "android.intent.action.EDIT": frozenset({"content", "file"}),
    "android.intent.action.PICK": frozenset({"content"}),
    "android.intent.action.DIAL": frozenset({"tel", "voicemail"}),
    "android.intent.action.CALL": frozenset({"tel", "voicemail"}),
    "android.intent.action.SENDTO": frozenset({"sms", "smsto", "mailto"}),
    "android.intent.action.SEND": frozenset({"content", "file", "mailto"}),
    "android.intent.action.INSERT": frozenset({"content"}),
    "android.intent.action.INSERT_OR_EDIT": frozenset({"content"}),
    "android.intent.action.DELETE": frozenset({"content"}),
    "android.intent.action.GET_CONTENT": frozenset({"content"}),
    "android.intent.action.ATTACH_DATA": frozenset({"content", "file"}),
    "android.intent.action.WEB_SEARCH": frozenset({"https", "http"}),
    "android.intent.action.QUICK_VIEW": frozenset({"content", "file"}),
    "android.media.action.MEDIA_PLAY_FROM_SEARCH": frozenset({"content", "file", "https", "http"}),
    "com.google.android.gms.fitness.VIEW": frozenset({"content"}),
    "vnd.google.fitness.VIEW": frozenset({"content"}),
    "vnd.google.fitness.TRACK": frozenset({"content"}),
}

#: Default compatibility for actions without an explicit entry: they take no
#: data at all, so *any* data URI is an incompatible combination.
NO_DATA: FrozenSet[str] = frozenset()


def compatible_schemes(action: str) -> FrozenSet[str]:
    """Schemes valid with *action* (empty set: action takes no data)."""
    return _COMPATIBLE.get(action, NO_DATA)


def is_known_action(action: Optional[str]) -> bool:
    return action is not None and action in KNOWN_ACTIONS


def is_known_scheme(scheme: Optional[str]) -> bool:
    return scheme is not None and scheme in URI_SAMPLES


def is_compatible(action: Optional[str], data: Optional[Uri]) -> bool:
    """Is {action, data} a *valid pair* in the platform's eyes?

    ``None`` data is compatible with any action; data with an action that
    takes no data -- or with a scheme outside the action's set -- is not.
    """
    if action is None or data is None:
        return True
    if not is_known_action(action):
        return False
    return data.scheme in compatible_schemes(action)


def valid_pairs() -> Tuple[Tuple[str, str], ...]:
    """Every (action, sample data string) pair, for campaign D."""
    pairs = []
    for action in ALL_ACTIONS:
        schemes = compatible_schemes(action)
        for scheme in sorted(schemes):
            pairs.append((action, URI_SAMPLES[scheme]))
        if not schemes:
            # Actions without data still form a valid pair with "no data";
            # campaign D represents that as an empty data field.
            pairs.append((action, ""))
    return tuple(pairs)
