"""The device farm: sharded execution of the fuzzing studies.

The paper ran one watch on one operator's desk; campaign wall-clock was
bounded by a single device.  Real intent-fuzzing deployments (and every
fuzzing farm since) scale the other way: partition the target population,
give every partition its own device, run partitions in parallel, merge the
evidence.  This package is that farm for the simulator:

* :mod:`repro.farm.partition` -- splits a corpus into per-package shards
  and derives each shard's seed and fault plan (``corpus seed xor
  crc32(shard key)``), so a shard's behaviour is a pure function of its
  spec, never of which worker ran it or what ran before it;
* :mod:`repro.farm.shard` -- :func:`run_shard`: builds a fresh device pair
  per shard with its *own* scoped fault plane and telemetry handle
  (:class:`~repro.android.runtime.RuntimeContext`), runs the shard's
  ``(package, campaign)`` segments, and returns a picklable
  :class:`ShardResult`;
* :mod:`repro.farm.pool` -- :func:`run_shards`: ``workers=1`` runs shards
  sequentially in-process (deterministic reference path, live telemetry,
  kill-switch support); ``workers>1`` fans out across worker processes,
  supervised by default;
* :mod:`repro.farm.supervisor` -- :func:`supervise_shards`: the supervised
  executor behind ``workers>1`` -- per-shard deadlines and heartbeat
  liveness, bounded bit-identical retries (journalled shards resume from
  their checkpoint), poison quarantine with an explicit
  :class:`~repro.farm.health.StudyHealthReport`, a shared ``--kill-after``
  switch, and graceful SIGINT/SIGTERM drain;
* :mod:`repro.farm.health` -- the supervision vocabulary: attempt/shard
  outcome records, the health report, the worker heartbeat, and the
  ``REPRO_FARM_CRASH`` worker-crash injector used to exercise all of it;
* :mod:`repro.farm.merge` -- collapses shard outputs into the exact
  artifacts the analysis layer consumes (:meth:`FuzzSummary.merge`,
  :meth:`StudyCollector.merge`, metrics/span absorption), skipping the
  holes poisoned shards leave behind;
* :mod:`repro.farm.journal` -- :class:`StudyManifest`: one manifest over
  per-shard checkpoint journals, validating config / fault plan / worker
  count on resume.

**Determinism contract.**  Every shard starts its own virtual clock at
zero and is seeded from its spec alone, so the merged study is bit-identical
at any worker count: ``workers=4`` reproduces ``workers=1`` reproduces the
pre-farm serial tables.  Supervision preserves the contract: a retried
shard re-runs the same pure function of the same spec, so a study that
needed three worker crashes' worth of retries still merges byte-identical
to a clean run.
"""

from __future__ import annotations

from repro.farm.health import (
    CrashPolicy,
    ShardFailedError,
    ShardFailure,
    ShardPoisonedError,
    StudyHealthReport,
    StudyInterrupted,
    WorkerHeartbeat,
)
from repro.farm.journal import StudyManifest
from repro.farm.merge import (
    absorb_telemetry,
    merge_collectors,
    merge_fleet,
    merge_summaries,
)
from repro.farm.partition import derive_plan, derive_seed, plan_shards, shard_packages
from repro.farm.pool import resolve_workers, run_shards
from repro.farm.shard import ShardResult, ShardSpec, run_shard
from repro.farm.supervisor import (
    DEFAULT_POLICY,
    SupervisedRun,
    SupervisionPolicy,
    supervise_shards,
)

__all__ = [
    "CrashPolicy",
    "DEFAULT_POLICY",
    "ShardFailedError",
    "ShardFailure",
    "ShardPoisonedError",
    "ShardResult",
    "ShardSpec",
    "StudyHealthReport",
    "StudyInterrupted",
    "StudyManifest",
    "SupervisedRun",
    "SupervisionPolicy",
    "WorkerHeartbeat",
    "absorb_telemetry",
    "derive_plan",
    "derive_seed",
    "merge_collectors",
    "merge_fleet",
    "merge_summaries",
    "plan_shards",
    "resolve_workers",
    "run_shard",
    "run_shards",
    "shard_packages",
    "supervise_shards",
]
