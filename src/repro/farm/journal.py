"""The study manifest: one journal header over per-shard checkpoint files.

A sharded study cannot checkpoint into a single journal -- shards finish
segments concurrently and each owns its own snapshot.  Instead the manifest
file (the path the operator passes to ``--journal``) records the study-wide
facts once -- config, fault-plan fingerprint, package list, campaigns, and
the worker count -- plus the shard table mapping each shard to its own
``<manifest>.shard-NNN`` checkpoint journal.

Resume validation happens here, before any shard is spawned: a journal
recorded under a different config, a different fault plan, or a different
``--workers`` count is rejected with an error saying exactly what to change.
The worker count is part of the contract not for determinism (results are
worker-count independent) but because a kill under ``workers=1`` may leave
a shared kill-switch mid-shard state that a parallel resume could not have
produced, and silently resuming under different parallelism would make the
wall-clock bookkeeping in the bench artifacts lie.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from repro.faults.journal import CheckpointJournal

MANIFEST_VERSION = 1


class StudyManifest:
    """Header + shard table for one sharded, journalled study."""

    def __init__(self, path: str) -> None:
        self.path = str(path)
        self._journal = CheckpointJournal(self.path)

    def shard_journal_path(self, index: int) -> str:
        return f"{self.path}.shard-{index:03d}"

    def start(
        self,
        *,
        config: str,
        fault_fingerprint: str,
        packages: Sequence[str],
        campaigns: Sequence[str],
        workers: int,
        shards: Sequence[Any],
        extra: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Write the manifest header (truncating any previous manifest).

        *extra* carries study-kind specific facts (the fleet study records
        its fleet size, cohort spec and lane count here) so a resume can
        rebuild the exact plan without the operator repeating the flags.
        """
        header = {
            "kind": "study-manifest",
            "manifest_version": MANIFEST_VERSION,
            "config": config,
            "fault_fingerprint": fault_fingerprint,
            "packages": list(packages),
            "campaigns": list(campaigns),
            "workers": workers,
            "shards": [
                {
                    "index": spec.index,
                    "key": spec.key,
                    "packages": list(spec.packages),
                    "journal": self.shard_journal_path(spec.index),
                }
                for spec in shards
            ],
        }
        if extra:
            header.update(extra)
        self._journal.start(header)

    def header(self) -> Dict[str, Any]:
        return self._journal.header()

    def shard_table(self) -> List[Dict[str, Any]]:
        return list(self.header().get("shards", []))

    def validate_resume(
        self, *, config: str, fault_fingerprint: str, workers: int
    ) -> Dict[str, Any]:
        """Check the manifest matches the live run; return its header."""
        header = self.header()
        if header.get("config") != config:
            raise ValueError(
                f"journal {self.path} was recorded under config "
                f"{header.get('config')!r}, not {config!r}"
            )
        if header.get("fault_fingerprint") != fault_fingerprint:
            raise ValueError(
                f"journal {self.path} was recorded under fault plan "
                f"{header.get('fault_fingerprint')!r}; the installed plan is "
                f"{fault_fingerprint!r} -- resume under the original plan"
            )
        recorded = header.get("workers", 1)
        if recorded != workers:
            raise ValueError(
                f"journal {self.path} was recorded with --workers {recorded}, "
                f"not --workers {workers} -- resume with --workers {recorded}"
            )
        return header
