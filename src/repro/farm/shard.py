"""One shard: a fresh device pair running its slice of the study.

:func:`run_shard` is the farm's unit of work and is deliberately a pure
function of its :class:`ShardSpec`: it builds its own corpus, its own
device(s) on a virtual clock starting at zero, its own scoped fault plane
and (in worker processes) its own telemetry handle, runs the shard's
``(package, campaign)`` segments with exactly the serial harness's rhythm
-- fuzz, pull the log, fold, clear -- and returns a picklable
:class:`ShardResult`.  Nothing it touches is process-global, which is the
whole determinism argument: a shard cannot observe which worker ran it,
what ran before it, or how many siblings it has.

Checkpointing is per shard: each shard keeps its own
:class:`~repro.faults.journal.CheckpointJournal` segment file and snapshot
under the study manifest, and resuming a shard restores the snapshot,
rebinds the (deliberately unpickled) :class:`RuntimeContext`, and adopts
the fault plan's execution stream -- the same capture/adopt dance the
serial harness used, now scoped to one device tree.
"""

from __future__ import annotations

import contextlib
import dataclasses
from typing import TYPE_CHECKING, List, Optional, Tuple

from repro.analysis.manifest import StudyCollector
from repro.android.runtime import RuntimeContext
from repro.apps.catalog import build_phone_corpus, build_wear_corpus
from repro.farm.health import CrashPolicy, WorkerHeartbeat, crash_for
from repro.faults.journal import CheckpointJournal, KillSwitch
from repro.faults.plan import FaultPlan
from repro.faults.plane import NOOP_PLANE, FaultPlane
from repro.faults.retry import RetryPolicy
from repro.guided.engine import BlockOutcome, GuidedTask, run_guided_blocks
from repro.qgj.campaigns import Campaign
from repro.qgj.fuzzer import QGJ_MOBILE_PACKAGE, QGJ_WEAR_PACKAGE, FuzzerLibrary
from repro.qgj.master import deploy
from repro.qgj.results import FuzzSummary
from repro.telemetry import (
    DEFAULT_SPAN_CAPACITY,
    NOOP_HEARTBEAT,
    NOOP_PROFILER,
    NOOP_REGISTRY,
    NOOP_TRACER,
    Heartbeat,
    MetricsRegistry,
    PhaseProfiler,
    Span,
    Telemetry,
    Tracer,
)
from repro.telemetry.progress import DEFAULT_EVERY_INJECTIONS
from repro.wear.device import PhoneDevice, WearDevice, pair

if TYPE_CHECKING:  # pragma: no cover - avoids the experiments<->farm cycle
    from repro.experiments.config import ExperimentConfig
    from repro.fleet.pairs import PairSpec, PairSummary

#: Backoff for the operator-side adb calls (log pull / clear between
#: segments); injection-side retries are the fuzzer's own policy.
LOG_PULL_RETRY = RetryPolicy(max_attempts=6, base_delay_ms=200.0, max_delay_ms=5_000.0)

#: Snapshot payload format version (bumped on incompatible layout changes).
#: Version 2: per-shard snapshots; the class-global pid watermark is gone
#: (pids are allocated per device) and the runtime context pickles empty.
#: Version 3: PlanExecution carries OS-service/compat state (outage windows,
#: pending corruptions and compat manifestations); older pickles lack the
#: attributes and cannot resume under the widened fault model.
SNAPSHOT_VERSION = 3


@dataclasses.dataclass(frozen=True)
class ShardSpec:
    """Everything a worker needs to run one shard, picklable by design."""

    study: str                          # "wear" | "phone"
    index: int                          # position in the study's shard plan
    key: str                            # shard identity (the package name)
    packages: Tuple[str, ...]
    campaigns: Tuple[Campaign, ...]
    config: "ExperimentConfig"
    seed: int                           # derive_seed(corpus_seed, key)
    plan: Optional[FaultPlan] = None    # shard-private fault plan
    telemetry_enabled: bool = False     # worker shards build a local handle
    span_capacity: int = DEFAULT_SPAN_CAPACITY
    heartbeat_every: int = DEFAULT_EVERY_INJECTIONS
    #: Span sampling (1 = keep everything) and the seed its phase offsets
    #: derive from; copied from the live tracer so worker-local tracers
    #: sample identically to an in-process run.
    sample_every: int = 1
    sample_seed: int = 0
    #: Arm a worker-local PhaseProfiler whose snapshot ships home.
    profile: bool = False
    journal_path: Optional[str] = None  # per-shard checkpoint journal
    resume: bool = False
    #: Worker-crash injection (see :class:`repro.farm.health.CrashPolicy`);
    #: ``None`` also consults the ``REPRO_FARM_CRASH`` environment hook.
    crash: Optional[CrashPolicy] = None
    #: One package's round slice for ``study == "guided"`` (blocks, pool,
    #: known fingerprints); ``None`` for the blind studies.
    guided: Optional[GuidedTask] = None
    #: One lane's pair slice for ``study == "fleet"`` (see
    #: :mod:`repro.fleet`); ``None`` for the single-pair studies.
    fleet: Optional[Tuple["PairSpec", ...]] = None


@dataclasses.dataclass
class ShardResult:
    """What one shard ships back for merging (picklable by design)."""

    index: int
    key: str
    summary: FuzzSummary
    collector: StudyCollector
    watch: Optional[WearDevice]
    phone: Optional[PhoneDevice]
    clock_ms: float
    #: Telemetry captured by a worker-local handle; ``None``/empty when the
    #: shard ran in-process against the live handle (nothing to merge).
    metrics: Optional[MetricsRegistry] = None
    spans: List[Span] = dataclasses.field(default_factory=list)
    spans_dropped: int = 0
    spans_sampled_out: int = 0
    #: The worker-local profiler's snapshot (``None`` unless profiling).
    profile: Optional[dict] = None
    #: Block outcomes for a guided shard (``None`` for the blind studies).
    guided: Optional[List[BlockOutcome]] = None
    #: Completed pair summaries for a fleet lane shard.
    fleet: Optional[List["PairSummary"]] = None


def _fresh_handle(spec: ShardSpec) -> Telemetry:
    """A shard-local telemetry handle for worker processes.

    Never the (fork-inherited) process-wide handle: a forked worker would
    otherwise double-count everything recorded before the fork once the
    parent merges the shard registries back in.
    """
    if not spec.telemetry_enabled:
        return Telemetry(False, NOOP_REGISTRY, NOOP_TRACER, NOOP_HEARTBEAT)
    registry = MetricsRegistry()
    return Telemetry(
        True,
        registry,
        Tracer(
            capacity=spec.span_capacity,
            sample_every=spec.sample_every,
            sample_seed=spec.sample_seed,
        ),
        Heartbeat(registry, every_injections=spec.heartbeat_every),
        profiler=PhaseProfiler() if spec.profile else NOOP_PROFILER,
    )


def _adb_call(fn, clock, plane, handle, key):
    """One operator-side adb call, retried over session drops when armed."""
    if plane.armed:
        return LOG_PULL_RETRY.run(fn, clock, key=key, telemetry_handle=handle)
    return fn()


def run_shard(
    spec: ShardSpec,
    kill_switch: Optional[KillSwitch] = None,
    telemetry_handle: Optional[Telemetry] = None,
    heartbeat: Optional[WorkerHeartbeat] = None,
    attempt: int = 1,
) -> ShardResult:
    """Run one shard end to end.

    *telemetry_handle* is passed by the in-process (``workers=1``) path so
    counters, spans and heartbeats land directly on the live handle; worker
    processes leave it ``None`` and get a shard-local handle whose registry
    and spans ride home on the :class:`ShardResult`.  *kill_switch* counts
    injections across the whole study: a plain
    :class:`~repro.faults.journal.KillSwitch` in-process, a
    :class:`~repro.faults.journal.SharedKillSwitch` under the supervised
    farm.  *heartbeat* and *attempt* are supervision plumbing: the worker
    beats the shared liveness beacon at shard start and every segment
    boundary, and the attempt number drives the deterministic worker-crash
    injector (spec- or env-triggered; see :mod:`repro.farm.health`).
    """
    owns_handle = telemetry_handle is None
    handle = _fresh_handle(spec) if owns_handle else telemetry_handle
    # Both paths reset the sampling phase here: every shard samples from a
    # fresh count whether it runs in-process or on a worker-local tracer,
    # which is what keeps the merged trace identical at any worker count.
    handle.tracer.begin_shard()
    if heartbeat is not None:
        heartbeat.beat()
    # Bind explicitly even when no plan is armed: a forked worker inherits
    # the parent's module globals, and the fallback would leak the study
    # plane's (unsharded) schedule into the shard.
    plane = (
        FaultPlane(spec.plan, telemetry_handle=handle)
        if spec.plan is not None
        else NOOP_PLANE
    )
    runtime = RuntimeContext(fault_plane=plane, telemetry_handle=handle)
    if spec.study == "wear":
        result = _run_wear_shard(spec, handle, plane, runtime, kill_switch, heartbeat, attempt)
    elif spec.study == "phone":
        result = _run_phone_shard(spec, handle, plane, runtime, kill_switch, heartbeat, attempt)
    elif spec.study == "guided":
        result = _run_guided_shard(spec, handle, plane, runtime, kill_switch, heartbeat, attempt)
    elif spec.study == "fleet":
        result = _run_fleet_shard(spec, handle, kill_switch, heartbeat, attempt)
    else:
        raise ValueError(f"unknown shard study kind: {spec.study!r}")
    if owns_handle and handle.enabled:
        handle.flush()  # drain batched handles before the registry pickles
        result.metrics = handle.metrics
        result.spans = handle.tracer.spans()
        result.spans_dropped = handle.tracer.dropped
        result.spans_sampled_out = handle.tracer.sampled_out
        if handle.profiler.enabled:
            result.profile = handle.profiler.snapshot()
    return result


def _load_shard_state(journal: CheckpointJournal):
    state = journal.load_state()
    if state is not None and state.get("version") != SNAPSHOT_VERSION:
        raise ValueError(
            f"snapshot {journal.state_path} has version {state.get('version')}, "
            f"expected {SNAPSHOT_VERSION}"
        )
    return state


def _crash_policy(spec: ShardSpec) -> Optional[CrashPolicy]:
    """The shard's crash injection, spec field first, then the env hook."""
    if spec.crash is not None:
        return spec.crash
    return crash_for(spec.key)


def _beat(heartbeat: Optional[WorkerHeartbeat]) -> None:
    if heartbeat is not None:
        heartbeat.beat()


def _run_wear_shard(spec, handle, plane, runtime, kill_switch, heartbeat, attempt) -> ShardResult:
    config = spec.config
    crash = _crash_policy(spec)
    journal = (
        CheckpointJournal(spec.journal_path) if spec.journal_path is not None else None
    )
    segments = [(p, c) for p in spec.packages for c in spec.campaigns]
    state = None
    if spec.resume and journal is not None:
        state = _load_shard_state(journal)

    if state is not None:
        # Owning-writer resume: this shard appends segment records below,
        # so a tail torn by the kill must be truncated off first.
        journal.repair()
        watch = state["watch"]
        phone = state["phone"]
        corpus = state["corpus"]
        collector = state["collector"]
        summary = state["summary"]
        fuzzer = state["fuzzer"]
        # The device tree unpickles with an empty RuntimeContext (shared
        # across the tree by the pickle memo); rebind it to this shard's
        # scoped plane and handle, then adopt the captured fault stream.
        watch.runtime.bind_faults(plane)
        watch.runtime.bind_telemetry(handle)
        plane.adopt(watch.clock, state["plane"])
        fuzzer.kill_switch = kill_switch
        start_index = state["index"]
        if start_index >= len(segments):
            # The shard had already completed when the study was killed:
            # its snapshot *is* the result, no segment needs re-running.
            return ShardResult(
                index=spec.index,
                key=spec.key,
                summary=summary,
                collector=collector,
                watch=watch,
                phone=phone,
                clock_ms=watch.clock.now_ms(),
            )
    else:
        corpus = build_wear_corpus(seed=config.corpus_seed)
        watch = WearDevice(
            "moto360", logcat_capacity=config.logcat_capacity, runtime=runtime
        )
        phone = PhoneDevice("nexus4", model="LG Nexus 4", runtime=runtime)
        pair(phone, watch)
        corpus.install(watch)
        deploy(phone, watch)  # QGJ on both devices, as in the paper's setup
        collector = StudyCollector(corpus.packages())
        fuzzer = FuzzerLibrary(
            watch, sender_package=QGJ_WEAR_PACKAGE, kill_switch=kill_switch
        )
        summary = FuzzSummary(device=watch.name)
        start_index = 0
        if journal is not None:
            # Also on resume-with-no-snapshot: the kill landed before this
            # shard's first checkpoint, so it restarts from scratch.
            journal.start(
                {
                    "config": config.name,
                    "shard": spec.key,
                    "index": spec.index,
                    "fault_fingerprint": plane.fingerprint(),
                    "packages": list(spec.packages),
                    "campaigns": [campaign.value for campaign in spec.campaigns],
                }
            )

    adb = watch.adb
    if state is None:
        _adb_call(adb.logcat_clear, watch.clock, plane, handle, key=("clear", -1))
    if handle.enabled:
        # The shard's virtual time is its watch's clock from here on.
        handle.set_clock(watch.clock)
    _beat(heartbeat)
    with contextlib.ExitStack() as stack:
        if handle.enabled:
            stack.enter_context(
                handle.tracer.span(
                    "study",
                    clock=watch.clock,
                    study="wear",
                    config=config.name,
                    shard=spec.key,
                )
            )
        for index in range(start_index, len(segments)):
            package_name, campaign = segments[index]
            if crash is not None and crash.triggers(attempt, index):
                crash.fire(spec.key, attempt, index)
            app_result = fuzzer.fuzz_app(package_name, campaign, config.fuzz)
            summary.apps.append(app_result)
            log_text = _adb_call(
                adb.logcat, watch.clock, plane, handle, key=("logs", index)
            )
            collector.fold(log_text, package_name, campaign.value)
            _adb_call(
                adb.logcat_clear, watch.clock, plane, handle, key=("clear", index)
            )
            if journal is not None:
                journal.append(
                    {
                        "type": "segment",
                        "index": index,
                        "package": package_name,
                        "campaign": campaign.value,
                        "sent": app_result.sent,
                    }
                )
                journal.save_state(
                    {
                        "version": SNAPSHOT_VERSION,
                        "index": index + 1,
                        "watch": watch,
                        "phone": phone,
                        "corpus": corpus,
                        "collector": collector,
                        "summary": summary,
                        "fuzzer": fuzzer,
                        "plane": plane.capture(watch.clock),
                    }
                )
            _beat(heartbeat)
    return ShardResult(
        index=spec.index,
        key=spec.key,
        summary=summary,
        collector=collector,
        watch=watch,
        phone=phone,
        clock_ms=watch.clock.now_ms(),
    )


def _run_guided_shard(spec, handle, plane, runtime, kill_switch, heartbeat, attempt) -> ShardResult:
    """One guided shard: a fresh device pair running one package's blocks.

    Same device recipe as the wear shard -- full corpus installed, QGJ
    deployed, virtual clock from zero -- so a behaviour the blind study can
    reach is reachable here under the identical environment.  The guided
    study re-shards every round (fresh pair per ``(package, round)``), so
    a shard's observations depend only on its :class:`GuidedTask`, never on
    which worker ran it or what round preceded it on that worker.
    """
    if spec.guided is None:
        raise ValueError("guided shard needs a GuidedTask on spec.guided")
    if spec.journal_path is not None:
        raise ValueError("the guided study does not support checkpoint journals")
    config = spec.config
    crash = _crash_policy(spec)
    corpus = build_wear_corpus(seed=config.corpus_seed)
    watch = WearDevice(
        "moto360", logcat_capacity=config.logcat_capacity, runtime=runtime
    )
    phone = PhoneDevice("nexus4", model="LG Nexus 4", runtime=runtime)
    pair(phone, watch)
    corpus.install(watch)
    deploy(phone, watch)
    fuzzer = FuzzerLibrary(
        watch, sender_package=QGJ_WEAR_PACKAGE, kill_switch=kill_switch
    )
    if handle.enabled:
        handle.set_clock(watch.clock)
    _beat(heartbeat)
    if crash is not None and crash.triggers(attempt, 0):
        crash.fire(spec.key, attempt, 0)
    with contextlib.ExitStack() as stack:
        if handle.enabled:
            stack.enter_context(
                handle.tracer.span(
                    "study",
                    clock=watch.clock,
                    study="guided",
                    config=config.name,
                    shard=spec.key,
                )
            )
        outcomes = run_guided_blocks(fuzzer, spec.guided, config.fuzz)
    _beat(heartbeat)
    return ShardResult(
        index=spec.index,
        key=spec.key,
        summary=FuzzSummary(device=watch.name),
        collector=StudyCollector(corpus.packages()),
        watch=watch,
        phone=phone,
        clock_ms=watch.clock.now_ms(),
        guided=outcomes,
    )


def _run_fleet_shard(spec, handle, kill_switch, heartbeat, attempt) -> ShardResult:
    """One fleet lane: a cooperative scheduler multiplexing many pairs.

    The lane -- not the pair -- is the farm's unit of distribution, so
    supervision (deadline, heartbeat liveness, retry-with-resume, poison
    quarantine) rides along unchanged.  Each pair builds its own scoped
    fault plane from its spec; the shard-level ``spec.plan`` is unused
    here by design.
    """
    from repro.fleet.lane import run_lane  # deferred: farm <-> fleet cycle

    if spec.fleet is None:
        raise ValueError("fleet shard needs a pair slice on spec.fleet")
    crash = _crash_policy(spec)
    if crash is not None and crash.triggers(attempt, 0):
        crash.fire(spec.key, attempt, 0)
    summaries = run_lane(
        spec.fleet,
        lane_index=spec.index,
        journal_path=spec.journal_path,
        resume=spec.resume,
        kill_switch=kill_switch,
        telemetry_handle=handle,
        heartbeat=heartbeat,
    )
    return ShardResult(
        index=spec.index,
        key=spec.key,
        summary=FuzzSummary(device=spec.key),
        collector=StudyCollector([]),
        watch=None,
        phone=None,
        clock_ms=sum(s.clock_ms for s in summaries),
        fleet=summaries,
    )


def _run_phone_shard(spec, handle, plane, runtime, kill_switch, heartbeat, attempt) -> ShardResult:
    config = spec.config
    crash = _crash_policy(spec)
    if spec.journal_path is not None:
        raise ValueError("the phone study does not support checkpoint journals")
    corpus = build_phone_corpus(seed=config.phone_seed)
    device = PhoneDevice(
        "nexus6",
        model="Nexus 6",
        logcat_capacity=config.logcat_capacity,
        runtime=runtime,
    )
    corpus.install(device)
    collector = StudyCollector(corpus.packages())
    fuzzer = FuzzerLibrary(
        device, sender_package=QGJ_MOBILE_PACKAGE, kill_switch=kill_switch
    )
    summary = FuzzSummary(device=device.name)
    adb = device.adb
    _adb_call(adb.logcat_clear, device.clock, plane, handle, key=("clear", -1))
    if handle.enabled:
        handle.set_clock(device.clock)
    _beat(heartbeat)
    segments = [(p, c) for p in spec.packages for c in spec.campaigns]
    with contextlib.ExitStack() as stack:
        if handle.enabled:
            stack.enter_context(
                handle.tracer.span(
                    "study",
                    clock=device.clock,
                    study="phone",
                    config=config.name,
                    shard=spec.key,
                )
            )
        for index, (package_name, campaign) in enumerate(segments):
            if crash is not None and crash.triggers(attempt, index):
                crash.fire(spec.key, attempt, index)
            app_result = fuzzer.fuzz_app(package_name, campaign, config.fuzz)
            summary.apps.append(app_result)
            log_text = _adb_call(
                adb.logcat, device.clock, plane, handle, key=("logs", index)
            )
            collector.fold(log_text, package_name, campaign.value)
            _adb_call(
                adb.logcat_clear, device.clock, plane, handle, key=("clear", index)
            )
            _beat(heartbeat)
    return ShardResult(
        index=spec.index,
        key=spec.key,
        summary=summary,
        collector=collector,
        watch=None,
        phone=device,
        clock_ms=device.clock.now_ms(),
    )
