"""Corpus partitioning and per-shard seed/plan derivation.

The partitioning unit is the *package*: the experiment's log-collection
rhythm already isolates evidence per ``(package, campaign)`` segment, the
corpus generators seed every campaign from the spec (never from device
history), and a reboot aborts only the current app -- so one package's
segments carry no state into another's.  That makes per-package shards the
largest split that is still provably behaviour-preserving.

Seeds derive as ``base xor crc32(shard_key)``: stable across processes and
Python invocations (``hash()`` is salted by ``PYTHONHASHSEED`` and is
banned here), unique per shard key, and independent of shard *order* -- so
adding or removing packages never reshuffles the other shards' streams.
"""

from __future__ import annotations

import dataclasses
import zlib
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

from repro.faults.plan import FaultPlan
from repro.farm.shard import ShardSpec
from repro.qgj.campaigns import Campaign

if TYPE_CHECKING:  # pragma: no cover - avoids the experiments<->farm cycle
    from repro.experiments.config import ExperimentConfig


def shard_packages(packages: Sequence[str]) -> List[Tuple[str, Tuple[str, ...]]]:
    """Partition *packages* into ``(shard_key, package_group)`` pairs.

    One package per shard: the finest behaviour-preserving grain, and the
    one that keeps every shard's wall-clock roughly proportional to its
    component count.
    """
    return [(package, (package,)) for package in packages]


def derive_seed(base_seed: int, shard_key: str) -> int:
    """A stable 32-bit per-shard seed: ``base xor crc32(key)``."""
    return (base_seed ^ zlib.crc32(shard_key.encode("utf-8"))) & 0xFFFFFFFF


def derive_plan(plan: Optional[FaultPlan], shard_seed: int) -> Optional[FaultPlan]:
    """The shard's private fault plan: same intervals, shard-unique seed.

    Each shard runs on its own virtual clock from zero; re-seeding (rather
    than sharing the study plan's stream) keeps shards from all drawing the
    *same* fault schedule and is what makes a shard's faults independent of
    every other shard's existence.  An empty plan stays empty whatever the
    seed, preserving the "empty plan is no plan" property.
    """
    if plan is None:
        return None
    return dataclasses.replace(plan, seed=plan.seed ^ shard_seed)


def plan_shards(
    study: str,
    config: "ExperimentConfig",
    packages: Sequence[str],
    campaigns: Sequence[Campaign],
    base_plan: Optional[FaultPlan] = None,
    telemetry_enabled: bool = False,
    manifest=None,
    resume: bool = False,
    sample_every: int = 1,
    sample_seed: int = 0,
    profile: bool = False,
) -> List[ShardSpec]:
    """Build the full shard plan for one study.

    An empty *packages* still yields one (empty) shard, so a degenerate
    study produces devices and an empty summary exactly as the serial
    harness did.  *manifest* (a :class:`~repro.farm.journal.StudyManifest`)
    assigns each shard its per-shard journal path.  *sample_every* /
    *sample_seed* / *profile* mirror the live telemetry handle so worker
    shards instrument identically to an in-process run.
    """
    groups = shard_packages(packages) or [("", ())]
    specs: List[ShardSpec] = []
    for index, (key, group) in enumerate(groups):
        seed = derive_seed(config.corpus_seed, key)
        specs.append(
            ShardSpec(
                study=study,
                index=index,
                key=key,
                packages=tuple(group),
                campaigns=tuple(campaigns),
                config=config,
                seed=seed,
                plan=derive_plan(base_plan, seed),
                telemetry_enabled=telemetry_enabled,
                sample_every=sample_every,
                sample_seed=sample_seed,
                profile=profile,
                journal_path=(
                    manifest.shard_journal_path(index) if manifest is not None else None
                ),
                resume=resume,
            )
        )
    return specs
