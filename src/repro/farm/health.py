"""Farm health: crash injection, liveness, and the study health report.

The chaos plane (:mod:`repro.faults`) injects faults *inside* the simulated
environment -- adb drops, binder failures, lmkd kills.  This module is its
farm-layer sibling: the failures it models live in the harness itself --
a worker process that dies (OOM-kill, interpreter crash, unpicklable
result), raises, or stalls past its deadline.  Three pieces:

* :class:`CrashPolicy` -- the worker-crash injector.  A spec- or
  env-triggered hook inside :func:`~repro.farm.shard.run_shard` that, at a
  chosen segment and for a bounded number of attempts, calls ``os._exit``,
  raises, or spins past the deadline.  Deterministic by construction: the
  trigger is a pure function of ``(shard key, attempt, segment)``, so a
  supervised retry of the same spec either re-crashes (attempt still within
  ``attempts``) or runs clean -- never flakes.
* :class:`WorkerHeartbeat` -- a shared-memory liveness beacon.  The worker
  stamps monotonic time at shard start and every segment boundary; the
  supervisor reads the stamp's age and declares a worker stalled when it
  exceeds the heartbeat deadline.
* :class:`StudyHealthReport` -- the explicit account of how supervised
  execution went: per-shard attempts, outcomes, wall timings, and -- when
  shards were poisoned -- an itemized list of the coverage that was
  dropped, so a degraded report can never be mistaken for a complete one.
"""

from __future__ import annotations

import dataclasses
import os
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

#: Environment hook for the worker-crash injector (see :func:`parse_crash_env`).
CRASH_ENV = "REPRO_FARM_CRASH"

#: Exit code used by the ``exit`` crash mode: distinctive enough to read in
#: a supervisor log, unlike 1 (any traceback) or 137/143 (real OOM/TERM).
CRASH_EXIT_CODE = 86

#: Attempt-outcome vocabulary shared by the supervisor and the report.
OUTCOME_OK = "ok"
OUTCOME_EXCEPTION = "exception"    # worker sent back a traceback
OUTCOME_CRASH = "crash"            # worker process died without a result
OUTCOME_TIMEOUT = "timeout"        # per-shard wall-clock deadline exceeded
OUTCOME_STALLED = "stalled"        # heartbeat went silent
OUTCOME_KILLED = "killed"          # shared kill switch fired (CampaignKilled)

#: Shard-outcome vocabulary.
SHARD_OK = "ok"
SHARD_POISONED = "poisoned"
SHARD_KILLED = "killed"
SHARD_DRAINED = "drained"          # never finished: study drained on SIGINT/SIGTERM
SHARD_PENDING = "pending"


class InjectedWorkerCrash(RuntimeError):
    """Raised by the ``raise`` crash mode inside a worker."""


class ShardPoisonedError(RuntimeError):
    """A study finished degraded and the caller did not allow partial results.

    Carries the full :class:`StudyHealthReport` so the operator sees exactly
    which shards failed every attempt and what coverage was dropped.
    """

    def __init__(self, health: "StudyHealthReport") -> None:
        keys = ", ".join(shard.key or "<empty>" for shard in health.poisoned())
        super().__init__(
            f"{len(health.poisoned())} shard(s) failed all "
            f"{health.max_attempts} attempt(s): {keys} -- rerun, raise "
            f"--max-shard-attempts, or pass --allow-partial to accept a "
            f"degraded report"
        )
        self.health = health


class ShardFailedError(RuntimeError):
    """Legacy (unsupervised) pool path: one or more shards raised.

    Unlike the bare ``Pool.map`` traceback this used to be, the error names
    every failed shard's key and keeps the shards that *did* complete on
    ``.completed``, so the runner can report which package's shard died.
    """

    def __init__(self, failures: Sequence["ShardFailure"], completed=()) -> None:
        keys = ", ".join(f.key or "<empty>" for f in failures)
        first = failures[0]
        super().__init__(
            f"{len(failures)} shard(s) failed in the worker pool: {keys}\n"
            f"first failure ({first.key}):\n{first.detail}"
        )
        self.failures = list(failures)
        self.completed = list(completed)


class StudyInterrupted(RuntimeError):
    """The supervisor drained on SIGINT/SIGTERM before every shard finished.

    In-flight shards were allowed to checkpoint; the study's manifest and
    per-shard journals are resumable.  The conventional exit code for the
    CLI path is 130 (SIGINT).
    """

    def __init__(self, health: "StudyHealthReport") -> None:
        unfinished = [s.key for s in health.shards if s.outcome != SHARD_OK]
        super().__init__(
            f"study drained after signal with {len(unfinished)} shard(s) "
            f"unfinished; resume from the journal to continue"
        )
        self.health = health


# ---------------------------------------------------------------------------
# Worker-crash injector
# ---------------------------------------------------------------------------

_CRASH_MODES = ("exit", "raise", "hang")


@dataclasses.dataclass(frozen=True)
class CrashPolicy:
    """Deterministic worker-crash injection for one shard.

    ``mode`` is how the worker fails: ``exit`` calls ``os._exit`` (the
    OOM-kill / interpreter-death shape: no traceback, no result), ``raise``
    raises :class:`InjectedWorkerCrash` (the unpicklable-result / bug
    shape), ``hang`` spins in real time until the supervisor's deadline or
    heartbeat check kills the worker.  The crash fires when the shard
    reaches segment ``segment`` on any attempt ``<= attempts``, so with the
    default ``attempts=1`` the first dispatch fails and the retry is clean.
    """

    mode: str
    segment: int = 0
    attempts: int = 1

    def __post_init__(self) -> None:
        if self.mode not in _CRASH_MODES:
            raise ValueError(f"crash mode must be one of {_CRASH_MODES}, got {self.mode!r}")
        if self.segment < 0:
            raise ValueError(f"crash segment must be >= 0, got {self.segment}")
        if self.attempts < 1:
            raise ValueError(f"crash attempts must be >= 1, got {self.attempts}")

    def triggers(self, attempt: int, segment: int) -> bool:
        return attempt <= self.attempts and segment == self.segment

    def fire(self, key: str, attempt: int, segment: int) -> None:
        if self.mode == "exit":
            os._exit(CRASH_EXIT_CODE)
        if self.mode == "raise":
            raise InjectedWorkerCrash(
                f"injected worker crash: shard {key!r} attempt {attempt} "
                f"segment {segment}"
            )
        while True:  # "hang": real wall-clock stall, killed by the supervisor
            time.sleep(0.05)


def parse_crash_env(value: str) -> Dict[str, CrashPolicy]:
    """Parse the ``REPRO_FARM_CRASH`` grammar into per-shard policies.

    Comma-separated entries of ``<shard_key>=<mode>@<segment>`` with an
    optional ``x<attempts>`` suffix, e.g.::

        REPRO_FARM_CRASH="com.a.wear=exit@1,com.b.wear=hang@0x2"
    """
    policies: Dict[str, CrashPolicy] = {}
    for entry in value.split(","):
        entry = entry.strip()
        if not entry:
            continue
        key, sep, rest = entry.partition("=")
        if not sep or not key:
            raise ValueError(f"{CRASH_ENV}: bad entry {entry!r}, want key=mode@segment")
        mode, sep, where = rest.partition("@")
        segment, attempts = 0, 1
        if sep:
            seg_text, sep, attempts_text = where.partition("x")
            segment = int(seg_text)
            if sep:
                attempts = int(attempts_text)
        policies[key] = CrashPolicy(mode=mode, segment=segment, attempts=attempts)
    return policies


def crash_for(key: str) -> Optional[CrashPolicy]:
    """The env-triggered crash policy for shard *key*, if any."""
    value = os.environ.get(CRASH_ENV)
    if not value:
        return None
    return parse_crash_env(value).get(key)


# ---------------------------------------------------------------------------
# Liveness
# ---------------------------------------------------------------------------


class WorkerHeartbeat:
    """Shared-memory liveness beacon between one worker and the supervisor.

    Wraps a ``multiprocessing.Value('d')``: the worker stamps
    ``time.monotonic()`` (system-wide on every platform the farm runs on)
    at shard start and each segment boundary; the supervisor reads the
    stamp's age.  A worker that stops beating past the heartbeat deadline
    is stalled -- distinct from *dead* (process sentinel) and *late*
    (wall-clock deadline), and detected much sooner than either.
    """

    def __init__(self, value) -> None:
        self._value = value

    def beat(self) -> None:
        self._value.value = time.monotonic()

    def age_s(self) -> float:
        return time.monotonic() - self._value.value


# ---------------------------------------------------------------------------
# Failure and health records
# ---------------------------------------------------------------------------


@dataclasses.dataclass
class ShardFailure:
    """One failed shard attempt, picklable so it can cross the pool."""

    index: int
    key: str
    attempt: int
    kind: str          # an OUTCOME_* value
    detail: str = ""   # formatted traceback or supervisor diagnosis
    elapsed_s: float = 0.0


@dataclasses.dataclass
class AttemptRecord:
    """One dispatch of one shard, as the supervisor saw it."""

    attempt: int
    outcome: str       # an OUTCOME_* value
    elapsed_s: float
    detail: str = ""

    def to_wire(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)


@dataclasses.dataclass
class ShardHealth:
    """Supervision history of one shard."""

    index: int
    key: str
    packages: Tuple[str, ...]
    campaigns: Tuple[str, ...]
    attempts: List[AttemptRecord] = dataclasses.field(default_factory=list)
    outcome: str = SHARD_PENDING

    @property
    def retries(self) -> int:
        """Dispatches beyond the first (0 for a shard that ran clean)."""
        return max(0, len(self.attempts) - 1)

    @property
    def dropped_segments(self) -> int:
        if self.outcome == SHARD_OK:
            return 0
        return len(self.packages) * len(self.campaigns)

    def to_wire(self) -> Dict[str, Any]:
        return {
            "index": self.index,
            "key": self.key,
            "packages": list(self.packages),
            "campaigns": list(self.campaigns),
            "outcome": self.outcome,
            "attempts": [attempt.to_wire() for attempt in self.attempts],
        }


@dataclasses.dataclass
class StudyHealthReport:
    """The supervised study's explicit health account.

    A degraded study still merges and renders -- but through this report it
    *says so*: which shards were poisoned, what each attempt did, and
    exactly which ``(package, campaign)`` coverage the merged tables are
    missing.  ``degraded`` is the single bit the runner turns into exit
    code 4.
    """

    study: str
    workers: int
    max_attempts: int
    shards: List[ShardHealth] = dataclasses.field(default_factory=list)
    interrupted: bool = False

    @classmethod
    def for_specs(
        cls, specs: Sequence, *, study: str, workers: int, max_attempts: int
    ) -> "StudyHealthReport":
        return cls(
            study=study,
            workers=workers,
            max_attempts=max_attempts,
            shards=[
                ShardHealth(
                    index=spec.index,
                    key=spec.key,
                    packages=tuple(spec.packages),
                    campaigns=tuple(c.value for c in spec.campaigns),
                )
                for spec in specs
            ],
        )

    # -- aggregates ---------------------------------------------------------------
    def shard(self, index: int) -> ShardHealth:
        return self.shards[index]

    def poisoned(self) -> List[ShardHealth]:
        return [s for s in self.shards if s.outcome == SHARD_POISONED]

    @property
    def degraded(self) -> bool:
        return bool(self.poisoned())

    @property
    def retries_total(self) -> int:
        return sum(s.retries for s in self.shards)

    @property
    def noteworthy(self) -> bool:
        """Anything an operator should see: retries, poison, or a drain."""
        return self.degraded or self.retries_total > 0 or self.interrupted

    def dropped_packages(self) -> List[str]:
        dropped: List[str] = []
        for shard in self.poisoned():
            dropped.extend(shard.packages)
        return dropped

    def dropped_segments(self) -> int:
        return sum(s.dropped_segments for s in self.poisoned())

    # -- rendering ----------------------------------------------------------------
    def render(self) -> str:
        """Human-readable account (the runner prints this to stderr)."""
        if self.degraded:
            state = f"DEGRADED -- {len(self.poisoned())}/{len(self.shards)} shards poisoned"
        elif self.interrupted:
            state = "INTERRUPTED -- drained before completion"
        elif self.retries_total:
            state = "recovered"
        else:
            state = "clean"
        lines = [
            f"== farm health ({self.study}, workers={self.workers}, "
            f"max attempts={self.max_attempts}): {state} =="
        ]
        undispatched = 0
        for shard in self.shards:
            if shard.outcome == SHARD_OK and shard.retries == 0:
                continue
            if not shard.attempts:
                undispatched += 1
                continue
            history = "; ".join(
                f"attempt {a.attempt}: {a.outcome} in {a.elapsed_s:.2f}s"
                + (f" ({a.detail.splitlines()[-1]})" if a.detail else "")
                for a in shard.attempts
            )
            lines.append(f"shard {shard.index:03d} {shard.key or '<empty>'}: {history}")
        if undispatched:
            lines.append(f"drained before dispatch: {undispatched} shard(s)")
        for shard in self.poisoned():
            lines.append(
                f"poisoned: {shard.key or '<empty>'} -- dropped "
                f"{shard.dropped_segments} segment(s) "
                f"(campaigns {','.join(shard.campaigns)})"
            )
        lines.append(
            f"retries: {self.retries_total}, poisoned shards: "
            f"{len(self.poisoned())}, dropped segments: {self.dropped_segments()}"
        )
        return "\n".join(lines)

    def to_wire(self) -> Dict[str, Any]:
        return {
            "study": self.study,
            "workers": self.workers,
            "max_attempts": self.max_attempts,
            "degraded": self.degraded,
            "interrupted": self.interrupted,
            "retries_total": self.retries_total,
            "dropped_packages": self.dropped_packages(),
            "dropped_segments": self.dropped_segments(),
            "shards": [shard.to_wire() for shard in self.shards],
        }
