"""Supervised shard execution: deadlines, retries, poison quarantine, drain.

The paper's campaigns lost work whenever the harness environment failed
mid-run -- a watch reboot dropped the adb session and the operator simply
skipped the app.  PR 2 modeled those faults *inside* the simulator; this
module survives the layer above it failing: the farm itself.  A bare
``Pool.map`` has no deadline, no liveness check and no recovery -- one
worker that dies (OOM-kill, unpicklable result, interpreter crash) or
hangs loses the entire study.  The supervisor replaces it with the loop a
dependable injection campaign needs (Cotroneo et al. make the same point
at OS scale):

* **dispatch** -- shards go out asynchronously to one worker process each,
  at most ``workers`` in flight, each with its own result pipe and
  :class:`~repro.farm.health.WorkerHeartbeat`;
* **liveness** -- a worker is *dead* when its process sentinel fires
  without a result, *late* when it outlives the per-shard wall-clock
  deadline, and *stalled* when its heartbeat goes silent past the
  heartbeat deadline;
* **retry** -- a failed shard is re-dispatched up to ``max_attempts``
  times.  This is safe because :func:`~repro.farm.shard.run_shard` is a
  pure function of its spec -- a retry is bit-identical -- and journalled
  shards retry with ``resume=True``, continuing from their last durable
  checkpoint instead of restarting;
* **poison quarantine** -- a shard that fails every attempt is quarantined
  and the study completes anyway, with the dropped coverage itemized in
  the :class:`~repro.farm.health.StudyHealthReport`;
* **study kill** -- a worker reporting :class:`CampaignKilled` (the shared
  ``--kill-after`` switch fired) aborts the whole study: no retry, no new
  dispatches, and the exception is re-raised once in-flight workers die,
  leaving every journal resumable;
* **graceful drain** -- SIGINT/SIGTERM stops dispatching, lets in-flight
  shards finish and checkpoint (deadlines still enforced), then raises
  :class:`~repro.farm.health.StudyInterrupted` for the CLI to turn into
  exit 130 with a resumable manifest.

``workers=1`` stays the deterministic in-process reference path: shards
run sequentially against the live telemetry handle with no retry
machinery, and the supervisor only times them for the health report.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import multiprocessing.connection
import signal
import time
import traceback
from collections import deque
from typing import Dict, List, Optional, Sequence

from repro.farm.health import (
    OUTCOME_CRASH,
    OUTCOME_EXCEPTION,
    OUTCOME_KILLED,
    OUTCOME_OK,
    OUTCOME_STALLED,
    OUTCOME_TIMEOUT,
    SHARD_DRAINED,
    SHARD_KILLED,
    SHARD_OK,
    SHARD_POISONED,
    AttemptRecord,
    StudyHealthReport,
    StudyInterrupted,
    WorkerHeartbeat,
)
from repro.farm.shard import ShardResult, ShardSpec, run_shard
from repro.faults.errors import CampaignKilled
from repro.faults.journal import KillSwitch, SharedKillSwitch
from repro.telemetry.metrics import SHARD_RETRIES, SHARDS_POISONED
from repro.telemetry.trace import Span


def mp_context(start_method: Optional[str] = None):
    """The farm's multiprocessing context.

    ``fork`` is preferred where available (Linux): workers inherit the
    loaded modules instead of re-importing the world.  *start_method*
    forces a specific method (the spawn round-trip tests use this).
    """
    if start_method is not None:
        return multiprocessing.get_context(start_method)
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


@dataclasses.dataclass(frozen=True)
class SupervisionPolicy:
    """Knobs of the supervised executor.

    Defaults are deliberately conservative: one retry, no wall-clock
    deadline and no heartbeat deadline -- dead-worker detection (the
    process sentinel) is always on and costs nothing, while timeouts are
    opt-in because a legitimate paper-scale shard can run for minutes.
    """

    max_attempts: int = 2
    shard_timeout_s: Optional[float] = None      # per-attempt wall-clock deadline
    heartbeat_timeout_s: Optional[float] = None  # max silence between beats
    poll_interval_s: float = 0.05
    term_grace_s: float = 2.0                    # SIGTERM -> SIGKILL escalation
    start_method: Optional[str] = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.shard_timeout_s is not None and self.shard_timeout_s <= 0:
            raise ValueError(f"shard_timeout_s must be > 0, got {self.shard_timeout_s}")
        if self.heartbeat_timeout_s is not None and self.heartbeat_timeout_s <= 0:
            raise ValueError(
                f"heartbeat_timeout_s must be > 0, got {self.heartbeat_timeout_s}"
            )


DEFAULT_POLICY = SupervisionPolicy()


@dataclasses.dataclass
class SupervisedRun:
    """What supervised execution hands back to the merge layer.

    ``results`` is in spec order with ``None`` holding the place of every
    poisoned shard; ``health`` is the explicit per-shard account the
    experiments attach to their study results.
    """

    results: List[Optional[ShardResult]]
    health: StudyHealthReport


def _send(conn, message) -> None:
    try:
        conn.send(message)
    except Exception:  # supervisor already gone; nothing useful to do
        pass


def _supervised_worker(spec, attempt, conn, beat_value, kill_counter, kill_limit):
    """Worker-process entry point (top-level so ``spawn`` can import it).

    Sends exactly one message: ``("ok", result)``, ``("killed",
    injections)`` or ``("error", traceback)``.  A worker that dies without
    sending (``os._exit``, SIGKILL, interpreter abort) is diagnosed by the
    supervisor from its process sentinel.  SIGINT is ignored so a terminal
    Ctrl-C drains through the supervisor instead of killing shards
    mid-segment; SIGTERM stays default so the supervisor can kill a
    stalled worker.
    """
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
        signal.signal(signal.SIGTERM, signal.SIG_DFL)
    except (ValueError, OSError):  # pragma: no cover - non-main thread/platform
        pass
    heartbeat = WorkerHeartbeat(beat_value)
    kill_switch = (
        SharedKillSwitch(kill_limit, kill_counter) if kill_counter is not None else None
    )
    try:
        result = run_shard(
            spec, kill_switch=kill_switch, heartbeat=heartbeat, attempt=attempt
        )
    except CampaignKilled as exc:
        _send(conn, ("killed", exc.injections))
    except BaseException:
        _send(conn, ("error", traceback.format_exc()))
    else:
        try:
            conn.send(("ok", result))
        except Exception:
            _send(conn, ("error", "unpicklable shard result:\n" + traceback.format_exc()))
    finally:
        try:
            conn.close()
        except Exception:  # pragma: no cover
            pass


def supervise_shards(
    specs: Sequence[ShardSpec],
    workers: int = 1,
    policy: Optional[SupervisionPolicy] = None,
    kill_switch: Optional[KillSwitch] = None,
    telemetry_handle=None,
) -> SupervisedRun:
    """Run every shard under supervision; never lose the study to one worker.

    Returns results in spec order (``None`` per poisoned shard) plus the
    health report.  Raises :class:`CampaignKilled` when the (shared) kill
    switch fires and :class:`StudyInterrupted` after a signal-triggered
    drain; plain worker failures never raise -- they retry, then poison.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    policy = policy if policy is not None else DEFAULT_POLICY
    specs = list(specs)
    health = StudyHealthReport.for_specs(
        specs,
        study=specs[0].study if specs else "empty",
        workers=workers,
        max_attempts=policy.max_attempts if workers > 1 else 1,
    )
    if not specs:
        return SupervisedRun([], health)
    if workers == 1:
        return _run_sequential(specs, health, kill_switch, telemetry_handle)
    return _Supervisor(specs, workers, policy, kill_switch, telemetry_handle, health).run()


def _run_sequential(specs, health, kill_switch, telemetry_handle) -> SupervisedRun:
    """The ``workers=1`` reference path: in-process, live handle, no retry.

    Attempt durations use ``time.monotonic()``, the same clock every
    deadline and heartbeat comparison in this module uses: an NTP step
    mid-shard must never distort the health report (or, in the parallel
    path, spuriously expire a healthy worker).
    """
    results: List[Optional[ShardResult]] = []
    for position, spec in enumerate(specs):
        row = health.shards[position]
        started = time.monotonic()
        try:
            result = run_shard(
                spec, kill_switch=kill_switch, telemetry_handle=telemetry_handle
            )
        except CampaignKilled:
            row.attempts.append(
                AttemptRecord(1, OUTCOME_KILLED, time.monotonic() - started)
            )
            row.outcome = SHARD_KILLED
            raise
        except BaseException:
            row.attempts.append(
                AttemptRecord(
                    1,
                    OUTCOME_EXCEPTION,
                    time.monotonic() - started,
                    traceback.format_exc(),
                )
            )
            raise
        row.attempts.append(AttemptRecord(1, OUTCOME_OK, time.monotonic() - started))
        row.outcome = SHARD_OK
        results.append(result)
    return SupervisedRun(results, health)


class _WorkerHandle:
    """One in-flight shard attempt as the supervisor tracks it."""

    __slots__ = ("process", "conn", "heartbeat", "position", "attempt", "started")

    def __init__(self, process, conn, heartbeat, position, attempt, started):
        self.process = process
        self.conn = conn
        self.heartbeat = heartbeat
        self.position = position
        self.attempt = attempt
        self.started = started


class _Supervisor:
    """The supervised executor for ``workers > 1``."""

    def __init__(self, specs, workers, policy, kill_switch, telemetry_handle, health):
        self._specs = specs
        self._workers = min(workers, len(specs))
        self._policy = policy
        self._telemetry = telemetry_handle
        self._health = health
        self._ctx = mp_context(policy.start_method)
        self._shared_kill = (
            SharedKillSwitch.create(kill_switch.limit, self._ctx)
            if kill_switch is not None
            else None
        )
        self._pending = deque((position, 1) for position in range(len(specs)))
        self._running: Dict[int, _WorkerHandle] = {}
        self._results: List[Optional[ShardResult]] = [None] * len(specs)
        self._killed_counts: List[int] = []
        self._drain_requested = False
        self._aborting = False
        self._old_handlers = {}

    # -- signal plumbing ----------------------------------------------------------
    def _on_signal(self, signum, frame):
        if self._drain_requested:
            raise KeyboardInterrupt
        self._drain_requested = True

    def _install_handlers(self):
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                self._old_handlers[sig] = signal.signal(sig, self._on_signal)
            except ValueError:  # not the main thread; drain stays signal-less
                pass

    def _restore_handlers(self):
        for sig, handler in self._old_handlers.items():
            signal.signal(sig, handler)

    # -- main loop ----------------------------------------------------------------
    def run(self) -> SupervisedRun:
        self._install_handlers()
        try:
            while self._running or (
                self._pending and not self._drain_requested and not self._aborting
            ):
                self._dispatch_up_to_capacity()
                self._wait_for_activity()
                self._monitor()
        finally:
            self._restore_handlers()
            self._reap_all()
        if self._aborting:
            raise CampaignKilled(min(self._killed_counts))
        if self._drain_requested:
            for position, _attempt in self._pending:
                self._health.shards[position].outcome = SHARD_DRAINED
            for row in self._health.shards:
                if row.outcome not in (SHARD_OK, SHARD_POISONED):
                    row.outcome = SHARD_DRAINED
            self._health.interrupted = True
            raise StudyInterrupted(self._health)
        self._finalize_telemetry()
        return SupervisedRun(self._results, self._health)

    def _dispatch_up_to_capacity(self):
        while (
            self._pending
            and len(self._running) < self._workers
            and not self._drain_requested
            and not self._aborting
        ):
            position, attempt = self._pending.popleft()
            self._dispatch(position, attempt)

    def _dispatch(self, position: int, attempt: int):
        spec = self._specs[position]
        if attempt > 1 and spec.journal_path is not None:
            # The journal holds every segment the dead attempt completed;
            # resuming from it is both faster and (by the resume-identity
            # property) bit-identical to restarting.
            spec = dataclasses.replace(spec, resume=True)
        beat_value = self._ctx.Value("d", time.monotonic())
        recv_conn, send_conn = self._ctx.Pipe(duplex=False)
        process = self._ctx.Process(
            target=_supervised_worker,
            args=(
                spec,
                attempt,
                send_conn,
                beat_value,
                self._shared_kill.counter if self._shared_kill is not None else None,
                self._shared_kill.limit if self._shared_kill is not None else 0,
            ),
            daemon=True,
        )
        process.start()
        send_conn.close()  # the worker owns the send end now
        self._running[position] = _WorkerHandle(
            process, recv_conn, WorkerHeartbeat(beat_value), position, attempt,
            time.monotonic(),
        )

    def _wait_for_activity(self):
        if not self._running:
            return
        waitables = [h.conn for h in self._running.values()]
        waitables += [h.process.sentinel for h in self._running.values()]
        try:
            multiprocessing.connection.wait(waitables, timeout=self._policy.poll_interval_s)
        except OSError:  # a pipe closed mid-wait; the monitor pass sorts it out
            pass

    def _monitor(self):
        now = time.monotonic()
        for handle in list(self._running.values()):
            message = self._poll_message(handle)
            if message is not None:
                self._finish(handle, message)
                continue
            if not handle.process.is_alive():
                # Grace poll: the worker may have died right after sending.
                message = self._poll_message(handle, timeout=0.25)
                if message is not None:
                    self._finish(handle, message)
                else:
                    self._fail(
                        handle,
                        OUTCOME_CRASH,
                        f"worker died without a result "
                        f"(exit code {handle.process.exitcode})",
                    )
                continue
            if (
                self._policy.shard_timeout_s is not None
                and now - handle.started > self._policy.shard_timeout_s
            ):
                self._kill_worker(handle)
                self._fail(
                    handle,
                    OUTCOME_TIMEOUT,
                    f"deadline exceeded ({self._policy.shard_timeout_s:.1f}s wall-clock)",
                )
                continue
            if (
                self._policy.heartbeat_timeout_s is not None
                and handle.heartbeat.age_s() > self._policy.heartbeat_timeout_s
            ):
                self._kill_worker(handle)
                self._fail(
                    handle,
                    OUTCOME_STALLED,
                    f"heartbeat silent for {handle.heartbeat.age_s():.1f}s "
                    f"(limit {self._policy.heartbeat_timeout_s:.1f}s)",
                )

    @staticmethod
    def _poll_message(handle, timeout: float = 0.0):
        try:
            if handle.conn.poll(timeout):
                return handle.conn.recv()
        except (EOFError, OSError):
            pass
        return None

    # -- attempt outcomes ---------------------------------------------------------
    def _finish(self, handle, message):
        kind, payload = message
        if kind == "ok":
            self._complete(handle, payload)
        elif kind == "killed":
            self._record(handle, OUTCOME_KILLED, f"after {payload} injections")
            self._health.shards[handle.position].outcome = SHARD_KILLED
            self._killed_counts.append(payload)
            self._aborting = True
            self._reap(handle)
        else:
            self._fail(handle, OUTCOME_EXCEPTION, payload)

    def _complete(self, handle, result):
        self._record(handle, OUTCOME_OK)
        self._results[handle.position] = result
        self._health.shards[handle.position].outcome = SHARD_OK
        self._reap(handle)

    def _fail(self, handle, outcome: str, detail: str):
        self._record(handle, outcome, detail)
        self._reap(handle)
        if self._aborting or self._drain_requested:
            return
        row = self._health.shards[handle.position]
        if handle.attempt < self._policy.max_attempts:
            self._count_retry(row, outcome)
            self._pending.append((handle.position, handle.attempt + 1))
        else:
            row.outcome = SHARD_POISONED

    def _record(self, handle, outcome: str, detail: str = ""):
        # handle.started is monotonic (the deadline clock); elapsed must
        # come from the same clock, never wall time.  The span below is
        # anchored at the perf_counter "now" and backdated by that elapsed,
        # so a wall-clock step mid-attempt cannot warp its duration.
        elapsed = time.monotonic() - handle.started
        record = AttemptRecord(handle.attempt, outcome, elapsed, detail)
        self._health.shards[handle.position].attempts.append(record)
        # Per-attempt spans, only for noteworthy attempts: a clean study's
        # telemetry must stay byte-identical to the serial run's.
        if (
            self._telemetry is not None
            and self._telemetry.enabled
            and (outcome != OUTCOME_OK or handle.attempt > 1)
        ):
            end = time.perf_counter()
            span = Span(
                span_id=0,
                parent_id=None,
                name="shard_attempt",
                attributes={
                    "study": self._health.study,
                    "shard": self._specs[handle.position].key,
                    "attempt": handle.attempt,
                    "outcome": outcome,
                },
                start_wall_s=end - elapsed,
                start_virtual_ms=None,
            )
            span.end_wall_s = end
            self._telemetry.tracer.absorb([span])

    def _count_retry(self, row, outcome: str):
        if self._telemetry is not None and self._telemetry.enabled:
            self._telemetry.metrics.counter(
                SHARD_RETRIES,
                "Shard attempts re-dispatched by the farm supervisor, by failure kind.",
                ("study", "shard", "kind"),
            ).labels(study=self._health.study, shard=row.key, kind=outcome).inc()

    def _finalize_telemetry(self):
        if self._telemetry is None or not self._telemetry.enabled:
            return
        poisoned = self._health.poisoned()
        if poisoned:
            self._telemetry.metrics.gauge(
                SHARDS_POISONED,
                "Shards quarantined as poison after exhausting every attempt.",
                ("study",),
            ).labels(study=self._health.study).set(len(poisoned))

    # -- worker teardown ----------------------------------------------------------
    def _kill_worker(self, handle):
        if handle.process.is_alive():
            handle.process.terminate()
            handle.process.join(self._policy.term_grace_s)
            if handle.process.is_alive():
                handle.process.kill()

    def _reap(self, handle):
        self._running.pop(handle.position, None)
        handle.process.join(self._policy.term_grace_s)
        if handle.process.is_alive():  # pragma: no cover - last resort
            handle.process.kill()
            handle.process.join()
        try:
            handle.conn.close()
        except Exception:  # pragma: no cover
            pass

    def _reap_all(self):
        for handle in list(self._running.values()):
            self._kill_worker(handle)
            self._reap(handle)
