"""Merging shard outputs into the study-wide artifacts.

The analysis layer (tables, figures, exports, ``dumpsys telemetry``) never
learns the farm exists: shard summaries concatenate through
:meth:`FuzzSummary.merge`, shard collectors fold through
:meth:`StudyCollector.merge`, and worker-local telemetry is absorbed into
the live handle -- counters sum, gauges take the last shard's level,
histogram buckets add elementwise, and spans are re-based onto the live
tracer's id sequence.  Everything merges in shard (spec) order, so the
merged study reads exactly like the serial run that visited the packages in
the same order.

A supervised run may hand over ``None`` in place of a poisoned shard
(``--allow-partial``); every merge helper skips those holes, and the
accompanying :class:`~repro.farm.health.StudyHealthReport` itemizes the
coverage they dropped.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Sequence

from repro.analysis.manifest import StudyCollector
from repro.farm.shard import ShardResult
from repro.qgj.results import FuzzSummary

if TYPE_CHECKING:  # pragma: no cover - typing-only import
    from repro.fleet.pairs import PairSummary


def _present(results: Sequence[Optional[ShardResult]]) -> List[ShardResult]:
    return [result for result in results if result is not None]


def merge_summaries(results: Sequence[Optional[ShardResult]]) -> FuzzSummary:
    return FuzzSummary.merge([result.summary for result in _present(results)])


def merge_collectors(results: Sequence[Optional[ShardResult]]) -> StudyCollector:
    return StudyCollector.merge([result.collector for result in _present(results)])


def merge_fleet(results: Sequence[Optional[ShardResult]]) -> List["PairSummary"]:
    """Flatten lane results into one fleet, ordered by pair id.

    Re-ordering by the pair's global id -- never by lane or completion
    order -- is what makes the merged fleet byte-identical at any
    (lanes x workers) packing: the same pairs produce the same summaries,
    and this is the only place their order is decided.
    """
    summaries: List["PairSummary"] = []
    seen = set()
    for result in _present(results):
        for summary in result.fleet or ():
            if summary.pair_id in seen:
                raise ValueError(f"pair {summary.pair_id} reported by two lanes")
            seen.add(summary.pair_id)
            summaries.append(summary)
    return sorted(summaries, key=lambda summary: summary.pair_id)


def absorb_telemetry(handle, results: Sequence[Optional[ShardResult]]) -> None:
    """Fold worker-local telemetry into *handle*, in shard order.

    In-process shards carry no telemetry payload (they recorded straight
    onto the live handle), so this is a no-op for them and for disabled
    telemetry.
    """
    if handle is None or not handle.enabled:
        return
    for result in _present(results):
        if result.metrics is not None:
            handle.metrics.merge_from(result.metrics)
        if result.spans or result.spans_dropped or result.spans_sampled_out:
            handle.tracer.absorb(
                result.spans, result.spans_dropped, result.spans_sampled_out
            )
        if result.profile:
            handle.profiler.merge(result.profile)
