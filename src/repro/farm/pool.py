"""Shard execution facade: sequential, supervised, or the legacy bare pool.

``workers=1`` is the deterministic reference path: shards run one after
another in this process, against the live telemetry handle (so heartbeats
stream and ``dumpsys telemetry`` works mid-run) and an optional kill-switch
that counts injections across the whole study.  ``workers>1`` fans the same
specs out across worker processes; each worker builds everything from its
picklable spec, so the merged study is bit-identical to the sequential one
-- parallelism only changes wall-clock, never results.

By default ``workers>1`` runs under the :mod:`repro.farm.supervisor`
executor (deadlines, heartbeat liveness, bounded retries, poison
quarantine, shared kill switch, graceful drain).  ``supervised=False``
keeps the original bare ``Pool.map`` for comparison; even that path now
wraps per-shard failures so a dead worker names *which* package's shard it
lost instead of discarding every completed shard behind an opaque
``MaybeEncodingError``.

``fork`` is preferred where available (Linux): workers inherit the loaded
modules instead of re-importing the world, and shard specs stay cheap to
ship.  Both paths preserve spec order, which the merge layer relies on for
shard-ordered concatenation.
"""

from __future__ import annotations

import os
import sys
import traceback
from typing import List, Optional, Sequence, Union

from repro.farm.health import ShardFailedError, ShardFailure, ShardPoisonedError
from repro.farm.shard import ShardResult, ShardSpec, run_shard
from repro.farm.supervisor import SupervisionPolicy, mp_context, supervise_shards
from repro.faults.journal import KillSwitch


def _pool_context():
    return mp_context()


def resolve_workers(workers: Union[int, str], units: Optional[int] = None) -> int:
    """Resolve a ``--workers`` value (``"auto"`` or an int) to a count.

    ``auto`` asks for one worker per available core, but never more workers
    than there are *units* of work (shards or lanes) -- extra processes
    would only sit idle -- and falls back to ``1`` on a single-core host,
    where process fan-out costs more than it buys.  Both clamps print a
    one-line note so bench numbers are never silently sequential.
    """
    if workers == "auto":
        cores = os.cpu_count() or 1
        resolved = cores
        if units is not None:
            resolved = min(resolved, max(units, 1))
        if resolved <= 1:
            reason = (
                f"only {units} unit(s) of work"
                if cores > 1
                else f"cpu_count={cores}"
            )
            print(
                f"[farm] --workers auto resolved to 1 ({reason}); "
                "running sequentially in-process",
                file=sys.stderr,
            )
            return 1
        return resolved
    count = int(workers)
    if count < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    return count


def _run_shard_guarded(spec: ShardSpec):
    """Legacy-pool wrapper: turn a worker exception into a typed result.

    A bare ``Pool.map`` surfaces a worker exception by re-raising it in the
    parent *after* discarding every other shard's result.  Shipping the
    failure as a value instead lets the parent keep the completed shards
    and report exactly which spec died.
    """
    try:
        return run_shard(spec)
    except BaseException:
        return ShardFailure(
            index=spec.index,
            key=spec.key,
            attempt=1,
            kind="exception",
            detail=traceback.format_exc(),
        )


def run_shards(
    specs: Sequence[ShardSpec],
    workers: int = 1,
    kill_switch: Optional[KillSwitch] = None,
    telemetry_handle=None,
    policy: Optional[SupervisionPolicy] = None,
    supervised: bool = True,
) -> List[ShardResult]:
    """Run every shard and return results in spec order.

    Raises :class:`ShardPoisonedError` (supervised path) when any shard
    exhausts its attempts, or :class:`ShardFailedError` (legacy path) when
    a worker raised -- both name the shards they lost.  Use
    :func:`repro.farm.supervisor.supervise_shards` directly to get partial
    results plus the health report instead of an exception.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    specs = list(specs)
    if workers == 1:
        return [
            run_shard(spec, kill_switch=kill_switch, telemetry_handle=telemetry_handle)
            for spec in specs
        ]
    if not specs:
        return []
    if supervised:
        run = supervise_shards(
            specs,
            workers=workers,
            policy=policy,
            kill_switch=kill_switch,
            telemetry_handle=telemetry_handle,
        )
        if run.health.poisoned():
            raise ShardPoisonedError(run.health)
        return [result for result in run.results if result is not None]
    if kill_switch is not None:
        raise ValueError(
            "the legacy pool cannot share a kill switch across workers; "
            "use the supervised executor (supervised=True)"
        )
    processes = min(workers, len(specs))
    with _pool_context().Pool(processes=processes) as pool:
        outputs = pool.map(_run_shard_guarded, specs)
    failures = [out for out in outputs if isinstance(out, ShardFailure)]
    if failures:
        completed = [out for out in outputs if not isinstance(out, ShardFailure)]
        raise ShardFailedError(failures, completed=completed)
    return outputs
