"""Shard execution: sequential in-process, or a multiprocessing pool.

``workers=1`` is the deterministic reference path: shards run one after
another in this process, against the live telemetry handle (so heartbeats
stream and ``dumpsys telemetry`` works mid-run) and an optional shared
kill-switch that counts injections across the whole study.  ``workers>1``
fans the same specs out over a ``multiprocessing`` pool; each worker builds
everything from its picklable spec, so the merged study is bit-identical to
the sequential one -- the pool only changes wall-clock, never results.

``fork`` is preferred where available (Linux): workers inherit the loaded
modules instead of re-importing the world, and shard specs stay cheap to
ship.  ``Pool.map`` preserves spec order, which the merge layer relies on
for shard-ordered concatenation.
"""

from __future__ import annotations

import multiprocessing
from typing import List, Optional, Sequence

from repro.faults.journal import KillSwitch
from repro.farm.shard import ShardResult, ShardSpec, run_shard


def _pool_context():
    methods = multiprocessing.get_all_start_methods()
    if "fork" in methods:
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


def run_shards(
    specs: Sequence[ShardSpec],
    workers: int = 1,
    kill_switch: Optional[KillSwitch] = None,
    telemetry_handle=None,
) -> List[ShardResult]:
    """Run every shard and return results in spec order."""
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    specs = list(specs)
    if workers == 1:
        return [
            run_shard(spec, kill_switch=kill_switch, telemetry_handle=telemetry_handle)
            for spec in specs
        ]
    if kill_switch is not None:
        raise ValueError(
            "kill_after_injections requires workers=1: one kill switch "
            "counts injections across the whole sequential study"
        )
    if not specs:
        return []
    processes = min(workers, len(specs))
    with _pool_context().Pool(processes=processes) as pool:
        return pool.map(run_shard, specs)
