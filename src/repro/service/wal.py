"""The durable study queue: a write-ahead log of queue transitions.

Every queue transition -- submit, lease, complete, fail, requeue, poison,
drain -- is one appended JSONL record, flushed and fsynced before the
transition takes effect anywhere else (write-ahead: the log IS the queue;
memory is just its cache).  The file rides
:class:`~repro.faults.journal.CheckpointJournal`, so a ``kill -9``
mid-append leaves at worst a torn final line that the *writer's* replay
truncates away -- the transition simply never happened, which is exactly
the state the rest of the system observed.  Reader handles (offline
``status``/``report`` clients) replay the same log but never modify it:
what looks like a torn tail to a reader may be a live daemon's append in
flight, and the single-writer role itself is enforced by the root's
:class:`~repro.service.lock.WriterLock` (a kernel ``flock``, so a dead
writer's lock dies with it).

Replay folds the log into per-study :class:`JobRecord` states.  Records
are keyed by the spec fingerprint; a duplicate ``submit`` for a known
fingerprint replays as a no-op, which is what makes resubmission
idempotent across daemon restarts.

Liveness deliberately does NOT live here.  Lease records carry the owning
daemon's incarnation id and an informational TTL, but no wall-clock
deadline: wall time can step (NTP) and monotonic time does not survive a
reboot, so expiry-by-timestamp in a durable log would either spuriously
expire healthy work or deadlock after a clock step.  Instead, in-process
liveness uses ``time.monotonic()`` (see :mod:`repro.service.queue`), and
across restarts a lease is dead exactly when its owner incarnation is --
which the recovering daemon can decide without trusting any clock.
"""

from __future__ import annotations

import dataclasses
import os
import threading
from typing import Dict, List, Optional, Tuple

from repro.faults.journal import CheckpointJournal

WAL_VERSION = 1

# -- job states (as replay reports them) ----------------------------------------
QUEUED = "queued"
LEASED = "leased"
DONE = "done"
POISONED = "poisoned"


@dataclasses.dataclass
class JobRecord:
    """One study's replayed state."""

    fingerprint: str
    spec_wire: Dict[str, object]
    state: str = QUEUED
    #: Lease attempts granted so far (the retry bound counts these).
    attempts: int = 0
    #: Incarnation id of the daemon holding the live lease ("" when none).
    owner: str = ""
    error: str = ""
    digest: str = ""
    report: str = ""
    #: Admission order (position of the submit record in the log).
    seq: int = 0

    def to_wire(self) -> Dict[str, object]:
        return {
            "fingerprint": self.fingerprint,
            "state": self.state,
            "attempts": self.attempts,
            "owner": self.owner,
            "error": self.error,
            "digest": self.digest,
            "report": self.report,
            "seq": self.seq,
            "spec": dict(self.spec_wire),
        }


class ServiceWAL:
    """Append-side and replay-side of the study queue's log.

    A handle is either the *writer* -- the one process holding the root's
    :class:`~repro.service.lock.WriterLock`, allowed to append and to
    truncate a torn tail during replay -- or a *reader*, which may only
    replay and must leave the file byte-for-byte alone (a reader's "torn
    tail" may be a live writer's append in flight, and truncating it
    would destroy a committed record after the writer's fsync lands).
    """

    def __init__(self, path: str, writer: bool = False) -> None:
        self.path = str(path)
        self.writer = writer
        self._journal = CheckpointJournal(self.path)
        self._lock = threading.Lock()
        #: Bytes of torn tail dropped by the last :meth:`replay` (0 when
        #: the log was clean) -- surfaced on the daemon's recovery line.
        #: Only a writer handle also truncates them off the file.
        self.recovered_bytes = 0

    def ensure(self) -> None:
        """Create the log with its header if it does not exist yet."""
        if not os.path.exists(self.path):
            self._journal.start({"kind": "service-wal", "wal_version": WAL_VERSION})

    # -- appends (each durable before it returns) ---------------------------------
    def _append(self, record: Dict[str, object]) -> None:
        if not self.writer:
            raise RuntimeError(
                f"{self.path}: read-only WAL handle cannot append "
                "(take the root's WriterLock and open with writer=True)"
            )
        with self._lock:
            self._journal.append(record)

    def submit(self, fingerprint: str, spec_wire: Dict[str, object]) -> None:
        self._append({"type": "submit", "fingerprint": fingerprint, "spec": spec_wire})

    def lease(self, fingerprint: str, owner: str, attempt: int, ttl_s: float) -> None:
        self._append(
            {
                "type": "lease",
                "fingerprint": fingerprint,
                "owner": owner,
                "attempt": attempt,
                "ttl_s": ttl_s,
            }
        )

    def complete(self, fingerprint: str, digest: str, report: str) -> None:
        self._append(
            {
                "type": "complete",
                "fingerprint": fingerprint,
                "digest": digest,
                "report": report,
            }
        )

    def failed(self, fingerprint: str, attempt: int, error: str) -> None:
        self._append(
            {
                "type": "failed",
                "fingerprint": fingerprint,
                "attempt": attempt,
                "error": error,
            }
        )

    def requeue(self, fingerprint: str, reason: str) -> None:
        self._append({"type": "requeue", "fingerprint": fingerprint, "reason": reason})

    def poison(self, fingerprint: str, error: str) -> None:
        self._append({"type": "poison", "fingerprint": fingerprint, "error": error})

    def drained(self, fingerprint: str, owner: str) -> None:
        self._append({"type": "drained", "fingerprint": fingerprint, "owner": owner})

    # -- replay -------------------------------------------------------------------
    def replay(self) -> Tuple[Dict[str, JobRecord], List[str]]:
        """Fold the log into job states.

        Returns ``(jobs, order)`` where *order* is the fingerprints in
        admission order.  Tolerates a torn final record -- and, on a
        writer handle only, truncates it off the file before the next
        append; anything else malformed raises, because a WAL that lies
        is worse than one that is missing.  A reader handle over a root
        with no WAL yet replays as empty without creating the file.
        """
        if self.writer:
            self.ensure()
        elif not os.path.exists(self.path):
            self.recovered_bytes = 0
            return {}, []
        with self._lock:
            records = CheckpointJournal.load(self.path, truncate=self.writer)
        header = records[0]
        if header.get("kind") != "service-wal":
            raise ValueError(f"{self.path}: not a service WAL")
        if header.get("wal_version") != WAL_VERSION:
            raise ValueError(
                f"{self.path}: WAL version {header.get('wal_version')}, "
                f"expected {WAL_VERSION}"
            )
        self.recovered_bytes = int(header.get("recovered_bytes", 0))
        jobs: Dict[str, JobRecord] = {}
        order: List[str] = []
        for record in records[1:]:
            kind = record.get("type")
            fingerprint = record.get("fingerprint")
            if not isinstance(fingerprint, str) or not fingerprint:
                raise ValueError(f"{self.path}: record without fingerprint: {record}")
            job = jobs.get(fingerprint)
            if kind == "submit":
                if job is None:
                    jobs[fingerprint] = JobRecord(
                        fingerprint=fingerprint,
                        spec_wire=dict(record.get("spec", {})),
                        seq=len(order),
                    )
                    order.append(fingerprint)
                continue
            if job is None:
                raise ValueError(
                    f"{self.path}: {kind} for never-submitted study {fingerprint}"
                )
            if kind == "lease":
                job.state = LEASED
                job.owner = str(record.get("owner", ""))
                job.attempts = int(record.get("attempt", job.attempts + 1))
            elif kind == "complete":
                job.state = DONE
                job.owner = ""
                job.digest = str(record.get("digest", ""))
                job.report = str(record.get("report", ""))
            elif kind == "failed":
                job.error = str(record.get("error", ""))
            elif kind == "requeue":
                job.state = QUEUED
                job.owner = ""
            elif kind == "poison":
                job.state = POISONED
                job.owner = ""
                job.error = str(record.get("error", "")) or job.error
            elif kind == "drained":
                job.state = QUEUED
                job.owner = ""
            else:
                raise ValueError(f"{self.path}: unknown WAL record type {kind!r}")
        return jobs, order
