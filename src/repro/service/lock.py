"""The WAL writer lock: one durable-queue writer per service root, ever.

The WAL is single-writer by design -- the daemon's in-memory queue is a
cache of the log, so a record appended by anyone else is a record the
daemon never learns about (it would sit "queued" until the next restart),
and two interleaved appenders could tear each other's records.  Discovery
(``daemon.json``) cannot enforce that: it is written only *after* the
daemon has replayed the WAL and started its HTTP surface, so a client
probing discovery races the daemon's startup window.

So the writer role is a kernel lock, not a file convention: the daemon
takes an exclusive ``flock`` on ``<root>/wal.lock`` before it replays the
WAL and holds it for its lifetime; a client wanting to submit offline
must win the same lock first.  ``flock`` is released by the kernel when
the holder dies -- ``kill -9`` included -- so a crashed daemon never
leaves a stale lock behind, and holding the lock is *proof* that no
daemon is mid-startup or mid-append, closing the discovery TOCTOU window.

On platforms without ``fcntl`` the lock degrades to a no-op and the root
is single-writer by convention only (the simulator targets POSIX; this
keeps imports working elsewhere).
"""

from __future__ import annotations

import os

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None

#: Lock file name inside a service root (next to ``wal.jsonl``).
LOCK_FILENAME = "wal.lock"


class WriterLock:
    """Exclusive flock over one service root's WAL writer role."""

    def __init__(self, root: str) -> None:
        self.root = str(root)
        self.path = os.path.join(self.root, LOCK_FILENAME)
        self._fd: int | None = None

    @property
    def held(self) -> bool:
        return self._fd is not None

    def acquire(self, blocking: bool = False) -> bool:
        """Try to take the writer role; returns False when someone has it.

        Idempotent for the holder.  The lock file itself is never removed
        (removing it would let a racer lock a fresh inode while the old
        holder still holds the old one); only its flock state matters.
        """
        if self._fd is not None:
            return True
        os.makedirs(self.root, exist_ok=True)
        fd = os.open(self.path, os.O_RDWR | os.O_CREAT, 0o644)
        if fcntl is None:  # pragma: no cover - non-POSIX fallback
            self._fd = fd
            return True
        flags = fcntl.LOCK_EX | (0 if blocking else fcntl.LOCK_NB)
        try:
            fcntl.flock(fd, flags)
        except OSError:
            os.close(fd)
            return False
        self._fd = fd
        return True

    def release(self) -> None:
        """Give the writer role back (no-op when not held)."""
        if self._fd is None:
            return
        fd, self._fd = self._fd, None
        try:
            if fcntl is not None:
                fcntl.flock(fd, fcntl.LOCK_UN)
        finally:
            os.close(fd)

    def __enter__(self) -> "WriterLock":
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()
