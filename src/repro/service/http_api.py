"""The daemon's status API: stdlib HTTP over the live queue and store.

A tiny read-mostly surface in the dumpsys spirit -- observe the daemon
without touching its files:

* ``GET  /status``               -- the daemon's status dict (JSON)
* ``GET  /studies``              -- every queued/leased/done/poisoned job
* ``GET  /studies/<fp>``         -- one job's state
* ``GET  /studies/<fp>/report``  -- the stored report, text/plain
* ``GET  /metrics``              -- Prometheus exposition of the registry
* ``GET  /dumpsys``              -- the human exposition (render_summary)
* ``POST /submit``               -- a StudySpec wire dict; 200 admitted or
  cached, 429 on admission-control backpressure, 400 on a bad spec

The server is a daemon-threaded ``ThreadingHTTPServer``; submissions land
on handler threads and are serialized by the queue's own lock, so the
serving loop never blocks on HTTP traffic and vice versa.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import TYPE_CHECKING, Optional, Tuple

from repro import telemetry
from repro.service.queue import AdmissionError
from repro.service.spec import StudySpec
from repro.telemetry.exporters import render_prometheus, render_summary

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.service.daemon import ServiceDaemon

MAX_BODY_BYTES = 64 * 1024


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-service/1"
    #: Set by StatusServer before serving.
    daemon: "ServiceDaemon" = None

    # -- plumbing -----------------------------------------------------------------
    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass  # the daemon's stdout is the operator's, not the access log's

    def _send(self, code: int, body: bytes, content_type: str) -> None:
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _json(self, code: int, payload: object) -> None:
        body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
        self._send(code, body, "application/json")

    def _text(self, code: int, text: str) -> None:
        self._send(code, text.encode("utf-8"), "text/plain; charset=utf-8")

    def _study_path(self) -> Optional[Tuple[str, bool]]:
        """``/studies/<fp>`` or ``/studies/<fp>/report`` -> (fp, report?)."""
        parts = [p for p in self.path.split("?")[0].split("/") if p]
        if len(parts) == 2 and parts[0] == "studies":
            return parts[1], False
        if len(parts) == 3 and parts[0] == "studies" and parts[2] == "report":
            return parts[1], True
        return None

    # -- GET ----------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - stdlib signature
        path = self.path.split("?")[0].rstrip("/") or "/"
        if path == "/status":
            self._json(200, self.daemon.status())
            return
        if path == "/studies":
            self._json(200, [job.to_wire() for job in self.daemon.queue.jobs()])
            return
        if path == "/metrics":
            self._text(200, render_prometheus(telemetry.get().metrics))
            return
        if path == "/dumpsys":
            self._text(200, render_summary(telemetry.get()))
            return
        study = self._study_path()
        if study is not None:
            fingerprint, want_report = study
            job = self.daemon.queue.job(fingerprint)
            if job is None:
                self._json(404, {"error": f"unknown study {fingerprint}"})
                return
            if not want_report:
                self._json(200, job.to_wire())
                return
            stored = self.daemon.store.get(fingerprint)
            if stored is None:
                self._json(404, {"error": f"study {fingerprint} has no report yet"})
                return
            self._text(200, stored.report_text())
            return
        self._json(404, {"error": f"no such endpoint {path}"})

    # -- POST ---------------------------------------------------------------------
    def do_POST(self) -> None:  # noqa: N802 - stdlib signature
        path = self.path.split("?")[0].rstrip("/")
        if path != "/submit":
            self._json(404, {"error": f"no such endpoint {path}"})
            return
        length = int(self.headers.get("Content-Length", 0))
        if length <= 0 or length > MAX_BODY_BYTES:
            self._json(400, {"error": f"body must be 1..{MAX_BODY_BYTES} bytes"})
            return
        try:
            wire = json.loads(self.rfile.read(length).decode("utf-8"))
            spec = StudySpec.from_wire(wire)
        except (ValueError, TypeError, UnicodeDecodeError) as exc:
            self._json(400, {"error": f"bad spec: {exc}"})
            return
        try:
            result = self.daemon.submit(spec)
        except AdmissionError as exc:
            self._json(
                429,
                {
                    "error": str(exc),
                    "capacity": exc.capacity,
                    "backlog": exc.backlog,
                },
            )
            return
        self._json(
            200,
            {
                "fingerprint": result.fingerprint,
                "state": result.state,
                "cached": result.cached,
            },
        )


class StatusServer:
    """The daemon's HTTP face, served from a background thread."""

    def __init__(self, daemon: "ServiceDaemon", port: int = 0) -> None:
        handler = type("_BoundHandler", (_Handler,), {"daemon": daemon})
        self._httpd = ThreadingHTTPServer(("127.0.0.1", port), handler)
        self._httpd.daemon_threads = True
        self.port = self._httpd.server_address[1]
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            kwargs={"poll_interval": 0.1},
            daemon=True,
            name=f"service-http-{self.port}",
        )

    def start(self) -> None:
        self._thread.start()

    def stop(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        self._thread.join(timeout=2.0)
