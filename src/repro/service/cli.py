"""``serve`` / ``submit`` / ``status``: the service's command surface.

These ride the same ``python -m repro`` entry point as the batch runner
(:mod:`repro.experiments.runner` dispatches here when the first argument
is a service subcommand) and share its exit-code conventions, plus one of
their own: **5** for an admission-control rejection, so scripts can
distinguish "queue full, resubmit later" from a usage error.

::

    python -m repro serve  ROOT [--until-idle] [--capacity N] ...
    python -m repro submit ROOT [quick|paper] [--guided] [chaos flags] ...
    python -m repro status ROOT [--report FINGERPRINT]
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import List, Optional

from repro.service.client import ServiceClient
from repro.service.daemon import RootLockedError, ServiceDaemon
from repro.service.queue import (
    AdmissionError,
    DEFAULT_CAPACITY,
    DEFAULT_LEASE_TTL_S,
    DEFAULT_MAX_ATTEMPTS,
)
from repro.service.spec import StudySpec
from repro.service.wal import DONE, POISONED

EXIT_OK = 0
EXIT_USAGE = 2
EXIT_REJECTED = 5
EXIT_POISONED = 6
EXIT_NO_DAEMON = 7
EXIT_DRAINED = 130

USAGE = """\
usage: python -m repro serve  ROOT [--capacity N] [--max-attempts N]
                                   [--lease-ttl S] [--port P] [--no-http]
                                   [--until-idle] [--no-telemetry]
       python -m repro submit ROOT [quick|paper] [--guided]
                                   [--packages P1,P2] [--campaigns ABCD]
                                   [--fault-seed N] [--service-fault-seed N]
                                   [--compat-skew N] [--workers N]
                                   [--scheduler NAME] [--guided-budget N]
                                   [--wait]
       python -m repro status ROOT [--json] [--report FINGERPRINT]

Fuzzing as a service over one durable ROOT directory: a write-ahead study
queue (wal.jsonl), a persistent results/corpus store (store/), and one
daemon incarnation at a time executing leased studies.  kill -9 the daemon
at any point; the next `serve` replays the WAL, reclaims the dead
incarnation's leases, resumes from shard checkpoints, and completes every
study to the byte-identical report.

serve options:
  --capacity N      bounded queue size; submissions past it are rejected
                    with an explicit backpressure error (default: 16)
  --max-attempts N  lease grants per study before it is quarantined as
                    poison and the queue completes degraded (default: 3)
  --lease-ttl S     seconds a lease may run before it is presumed dead and
                    requeued (monotonic clock; default: 3600)
  --port P          serve the HTTP status API on 127.0.0.1:P (default: an
                    ephemeral port, published in ROOT/daemon.json)
  --no-http         run without the status API
  --until-idle      exit 0 once the queue is drained (batch/CI mode)
  --no-telemetry    skip the telemetry plane

submit options:
  quick|paper       experiment scale (default: quick)
  --guided          submit a feedback-guided study (merges its behaviour
                    corpus into ROOT/store/corpus.jsonl) instead of the
                    journalled wear study
  --packages LIST   comma-separated package subset (default: full corpus)
  --campaigns SET   campaign letters, e.g. AB (default: all four)
  --fault-seed N, --service-fault-seed N, --compat-skew N
                    chaos knobs, same semantics as the batch runner
  --workers N       shard the study across N workers (default: 1)
  --scheduler NAME  guided bandit policy: ucb or thompson
  --guided-budget N total guided intent budget
  --wait            block until the study completes; print its report

status options:
  --json            print the raw status dict
  --report FP       print the stored report for study fingerprint FP

exit codes:
  0    ok (serve: queue idle with --until-idle; submit: admitted/cached)
  2    usage error (serve: also when another daemon holds the ROOT's
       writer lock)
  5    submission rejected by admission control (queue full)
  6    submit --wait: the study was quarantined as poison; no report
  7    submit: no daemon reachable to accept the study (one holds the
       root's writer lock without an HTTP endpoint), or with --wait the
       daemon died before the study completed; the WAL holds whatever
       was admitted for the next serve
  130  serve: drained on SIGTERM/SIGINT (leased study checkpointed and
       released; resubmit nothing -- the WAL still holds the queue)

One writer per ROOT: the daemon holds a kernel flock (ROOT/wal.lock) for
its lifetime, and offline submission takes the same lock, so two serves
of one ROOT -- or a submit racing a starting daemon -- cannot interleave
WAL appends.  A daemon running --no-http holds the lock but publishes no
endpoint, so submissions to it fail; reads (status, report) always work.\
"""


class _UsageError(Exception):
    pass


class _ArgumentParser(argparse.ArgumentParser):
    def error(self, message):
        raise _UsageError(message)


def _fail(message: str) -> int:
    print(f"{message}\n{USAGE}", file=sys.stderr)
    return EXIT_USAGE


# -- serve ---------------------------------------------------------------------
def _serve(args: List[str]) -> int:
    parser = _ArgumentParser(prog="python -m repro serve", add_help=False)
    parser.add_argument("root")
    parser.add_argument("--capacity", type=int, default=DEFAULT_CAPACITY)
    parser.add_argument("--max-attempts", type=int, default=DEFAULT_MAX_ATTEMPTS)
    parser.add_argument("--lease-ttl", type=float, default=DEFAULT_LEASE_TTL_S)
    parser.add_argument("--port", type=int, default=0)
    parser.add_argument("--no-http", action="store_true")
    parser.add_argument("--until-idle", action="store_true")
    parser.add_argument("--no-telemetry", action="store_true")
    opts = parser.parse_args(args)
    try:
        daemon = ServiceDaemon(
            opts.root,
            capacity=opts.capacity,
            max_attempts=opts.max_attempts,
            lease_ttl_s=opts.lease_ttl,
            http_port=None if opts.no_http else opts.port,
            enable_telemetry=not opts.no_telemetry,
        )
    except RootLockedError as exc:
        print(str(exc), file=sys.stderr)
        return EXIT_USAGE
    daemon.start()
    recovered = daemon.jobs_recovered
    line = f"serving {daemon.root} as {daemon.owner}"
    if daemon._server is not None:
        line += f" on 127.0.0.1:{daemon._server.port}"
    print(line)
    if recovered:
        print(f"recovered {recovered} leased study(ies) from a dead incarnation")
    if daemon.wal.recovered_bytes:
        print(f"truncated {daemon.wal.recovered_bytes} torn WAL byte(s)")
    code = daemon.serve_forever(until_idle=opts.until_idle)
    counts = daemon.queue.counts()
    print(
        f"exiting: {counts[DONE]} done, {counts['queued']} queued, "
        f"{counts[POISONED]} poisoned"
    )
    return code


# -- submit --------------------------------------------------------------------
def _spec_from_opts(opts) -> StudySpec:
    packages = None
    if opts.packages:
        packages = tuple(p.strip() for p in opts.packages.split(",") if p.strip())
    campaigns = None
    if opts.campaigns:
        campaigns = tuple(opts.campaigns.upper())
    return StudySpec(
        kind="guided" if opts.guided else "wear",
        config=opts.config,
        packages=packages,
        campaigns=campaigns,
        fault_seed=opts.fault_seed,
        service_fault_seed=opts.service_fault_seed,
        compat_skew=opts.compat_skew,
        workers=opts.workers,
        scheduler=opts.scheduler or "ucb",
        guided_budget=opts.guided_budget,
    )


def _wait_for_report(client: ServiceClient, fingerprint: str):
    """Poll until the study resolves; ``(outcome, report_or_None)``.

    Outcomes: ``"done"`` (report ready), ``"poisoned"`` (quarantined, no
    report), ``"lost"`` (no live daemon to finish it -- waiting longer
    cannot help; the WAL still holds the study for the next serve).  A
    daemon observed dead gets one final re-check before ``"lost"``: it
    may have completed the study and exited between polls.
    """
    while True:
        alive = client.daemon_alive()
        report = client.report(fingerprint)
        if report is not None:
            return "done", report
        job = client.study(fingerprint)
        if job is not None and job.get("state") == POISONED:
            return "poisoned", None
        if not alive:
            return "lost", None
        time.sleep(0.3)


def _submit(args: List[str]) -> int:
    parser = _ArgumentParser(prog="python -m repro submit", add_help=False)
    parser.add_argument("root")
    parser.add_argument("config", nargs="?", default="quick")
    parser.add_argument("--guided", action="store_true")
    parser.add_argument("--packages")
    parser.add_argument("--campaigns")
    parser.add_argument("--fault-seed", dest="fault_seed", type=int)
    parser.add_argument(
        "--service-fault-seed", dest="service_fault_seed", type=int
    )
    parser.add_argument("--compat-skew", dest="compat_skew", type=int)
    parser.add_argument("--workers", type=int, default=1)
    parser.add_argument("--scheduler")
    parser.add_argument("--guided-budget", dest="guided_budget", type=int)
    parser.add_argument("--wait", action="store_true")
    opts = parser.parse_args(args)
    try:
        spec = _spec_from_opts(opts)
    except (ValueError, TypeError) as exc:
        return _fail(str(exc))
    client = ServiceClient(opts.root)
    try:
        answer = client.submit(spec)
    except AdmissionError as exc:
        print(f"rejected: {exc}", file=sys.stderr)
        return EXIT_REJECTED
    except ConnectionError as exc:
        # A daemon holds the root (writer lock) but published no reachable
        # HTTP endpoint (--no-http, or mid-startup past the wait window).
        print(f"cannot submit: {exc}", file=sys.stderr)
        return EXIT_NO_DAEMON
    state = "cached" if answer.get("cached") else answer.get("state", "?")
    print(f"{answer['fingerprint']}  {state}  {spec.describe()}")
    if answer.get("cached") or opts.wait:
        fingerprint = str(answer["fingerprint"])
        if answer.get("cached"):
            outcome, report = "done", client.report(fingerprint)
            if report is None:
                # Cached but its report vanished (operator deleted it):
                # the queue will re-run on the next live resubmission.
                outcome = "lost"
        else:
            outcome, report = _wait_for_report(client, fingerprint)
        if outcome == "poisoned":
            print("study quarantined as poison; no report", file=sys.stderr)
            return EXIT_POISONED
        if outcome == "lost":
            print(
                "no live daemon to complete the study; it stays queued in "
                "the WAL -- start `serve` and re-check with `status`",
                file=sys.stderr,
            )
            return EXIT_NO_DAEMON
        print(report, end="" if report.endswith("\n") else "\n")
    return EXIT_OK


# -- status --------------------------------------------------------------------
def _status(args: List[str]) -> int:
    parser = _ArgumentParser(prog="python -m repro status", add_help=False)
    parser.add_argument("root")
    parser.add_argument("--json", action="store_true")
    parser.add_argument("--report", metavar="FINGERPRINT")
    opts = parser.parse_args(args)
    client = ServiceClient(opts.root)
    if opts.report:
        report = client.report(opts.report)
        if report is None:
            print(f"no stored report for {opts.report}", file=sys.stderr)
            return EXIT_USAGE
        print(report, end="" if report.endswith("\n") else "\n")
        return EXIT_OK
    status = client.status()
    if opts.json:
        print(json.dumps(status, sort_keys=True))
        return EXIT_OK
    live = "offline" if status.get("offline") else f"pid {status.get('pid')}"
    counts = status.get("queue", {})
    print(f"service {status.get('root')} ({live})")
    print(
        f"  queued {counts.get('queued', 0)}  leased {counts.get('leased', 0)}"
        f"  done {counts.get('done', 0)}  poisoned {counts.get('poisoned', 0)}"
    )
    if status.get("executing"):
        print(f"  executing {status['executing']}")
    if status.get("wal_recovered_bytes"):
        print(f"  wal: truncated {status['wal_recovered_bytes']} torn byte(s)")
    return EXIT_OK


SUBCOMMANDS = ("serve", "submit", "status")


def main(argv: Optional[List[str]] = None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    if not args or args[0] not in SUBCOMMANDS:
        return _fail(f"expected one of {SUBCOMMANDS}")
    if "-h" in args or "--help" in args:
        print(USAGE)
        return EXIT_OK
    try:
        if args[0] == "serve":
            return _serve(args[1:])
        if args[0] == "submit":
            return _submit(args[1:])
        return _status(args[1:])
    except _UsageError as exc:
        return _fail(str(exc))


if __name__ == "__main__":
    sys.exit(main())
