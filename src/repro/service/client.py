"""The service client: talk to a live daemon, or the files it left behind.

Discovery is the ``daemon.json`` file the daemon writes (atomically) into
its root: pid, incarnation id, and the status API's port.  The client
prefers the HTTP surface -- that is the live, locked view -- and falls
back to reading the WAL and store directly when no daemon answers, so
``status`` and ``report`` keep working against a stopped service (the
whole point of making the queue durable).  Offline reads are strictly
read-only: they never create, truncate, or repair the daemon's files,
because "no daemon answers" can also mean "a daemon is running without
its HTTP surface" or "mid-append" -- a reader that truncated what it
mistook for a torn tail could destroy a committed record.

Offline *submission* also works: the WAL is the queue, so appending a
submit record while no daemon runs simply queues work for the next
incarnation to recover and execute.  Single-writer safety is the root's
:class:`~repro.service.lock.WriterLock` (the same kernel flock the daemon
holds for its lifetime, taken *before* it replays the WAL): the client
appends only while holding that lock, so it can never race a daemon that
is starting up, appending, or repairing -- discovery alone cannot close
that window, because ``daemon.json`` appears only after recovery.
Offline admission uses the capacity the root's daemon was configured
with (``service.json``, left behind across restarts), falling back to
the defaults for a root no daemon has served yet.
"""

from __future__ import annotations

import json
import os
import time
import urllib.error
import urllib.request
from typing import Dict, Optional, Tuple

from repro.service.lock import WriterLock
from repro.service.queue import (
    DEFAULT_CAPACITY,
    DEFAULT_MAX_ATTEMPTS,
    AdmissionError,
    StudyQueue,
)
from repro.service.spec import StudySpec
from repro.service.store import ResultStore
from repro.service.wal import ServiceWAL

HTTP_TIMEOUT_S = 5.0

#: Backoff while waiting for a starting daemon to either publish
#: discovery or release the writer lock.
LOCK_POLL_S = 0.05


class ServiceClient:
    """Submit to / inspect one service root, live or offline."""

    def __init__(self, root: str, timeout_s: float = HTTP_TIMEOUT_S) -> None:
        self.root = str(root)
        self.discovery_path = os.path.join(self.root, "daemon.json")
        self.config_path = os.path.join(self.root, "service.json")
        self.timeout_s = timeout_s

    # -- discovery ----------------------------------------------------------------
    def discovery(self) -> Optional[Dict[str, object]]:
        """The daemon's discovery record, or None when none is published."""
        try:
            with open(self.discovery_path, "r", encoding="utf-8") as fh:
                return json.load(fh)
        except (OSError, ValueError):
            return None

    def base_url(self) -> Optional[str]:
        info = self.discovery()
        if info is None or not info.get("port"):
            return None
        return f"http://127.0.0.1:{info['port']}"

    def daemon_alive(self) -> bool:
        """A daemon is alive iff its published pid still exists.

        The discovery file is removed on clean shutdown, so its presence
        plus a live pid is the signal; the HTTP probe would miss daemons
        running without the status API.  Note the converse does not hold:
        a daemon mid-startup has no discovery yet -- which is why writes
        are gated on the WriterLock, never on this probe.
        """
        info = self.discovery()
        if info is None:
            return False
        try:
            os.kill(int(info.get("pid", -1)), 0)
        except (OSError, ValueError, TypeError):
            return False
        return True

    # -- HTTP plumbing ------------------------------------------------------------
    def _request(self, path: str, body: Optional[bytes] = None):
        base = self.base_url()
        if base is None:
            raise ConnectionError("no daemon HTTP endpoint published")
        request = urllib.request.Request(
            base + path,
            data=body,
            headers={"Content-Type": "application/json"} if body else {},
            method="POST" if body is not None else "GET",
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout_s) as response:
                return response.status, response.read()
        except urllib.error.HTTPError as exc:
            return exc.code, exc.read()
        except (urllib.error.URLError, OSError) as exc:
            raise ConnectionError(f"daemon unreachable: {exc}") from exc

    # -- operations ---------------------------------------------------------------
    def submit(self, spec: StudySpec) -> Dict[str, object]:
        """Submit *spec*; returns ``{fingerprint, state, cached}``.

        Raises :class:`AdmissionError` on backpressure (HTTP 429 from a
        live daemon, or the bounded queue directly when offline),
        ``ValueError`` when the daemon rejects the spec, and
        ``ConnectionError`` when a live daemon cannot be reached over
        HTTP and the offline path is unavailable (writer lock held --
        e.g. a daemon running with ``--no-http``).
        """
        deadline = time.monotonic() + self.timeout_s
        while True:
            if self.daemon_alive():
                return self._submit_http(spec)
            # Offline: the WAL is the queue -- but only the writer-lock
            # holder may append.  Holding the lock proves no daemon is
            # mid-startup (it takes this lock before replaying the WAL),
            # which closes the discovery TOCTOU window.
            lock = WriterLock(self.root)
            if lock.acquire():
                try:
                    result = self._offline_queue(writer=True).submit(spec)
                finally:
                    lock.release()
                return {
                    "fingerprint": result.fingerprint,
                    "state": result.state,
                    "cached": result.cached,
                }
            # Lock held but no discovery yet: a daemon is starting (or
            # another client is submitting).  Wait for one of the two
            # signals rather than guessing.
            if time.monotonic() >= deadline:
                raise ConnectionError(
                    f"{self.root}: the WAL writer lock is held but no daemon "
                    f"published discovery within {self.timeout_s:.0f}s "
                    "(a daemon running --no-http cannot accept submissions)"
                )
            time.sleep(LOCK_POLL_S)

    def _submit_http(self, spec: StudySpec) -> Dict[str, object]:
        body = json.dumps(spec.to_wire()).encode("utf-8")
        status, payload = self._request("/submit", body=body)
        answer = json.loads(payload.decode("utf-8"))
        if status == 429:
            raise AdmissionError(
                int(answer.get("capacity", 0)), int(answer.get("backlog", 0))
            )
        if status != 200:
            raise ValueError(answer.get("error", f"submit failed: HTTP {status}"))
        return answer

    def status(self) -> Dict[str, object]:
        """The daemon's status dict, or an offline summary of the files."""
        if self.daemon_alive():
            try:
                status, payload = self._request("/status")
                if status == 200:
                    return json.loads(payload.decode("utf-8"))
            except ConnectionError:
                pass  # alive but no HTTP endpoint: fall through to files
        queue = self._offline_queue()
        return {
            "owner": None,
            "pid": None,
            "root": os.path.abspath(self.root),
            "executing": None,
            "draining": False,
            "queue": queue.counts(),
            "depth": queue.depth(),
            "capacity": queue.capacity,
            "offline": True,
            "wal_recovered_bytes": queue.wal.recovered_bytes,
        }

    def study(self, fingerprint: str) -> Optional[Dict[str, object]]:
        """One job's wire state (live or replayed); None when unknown."""
        if self.daemon_alive():
            try:
                status, payload = self._request(f"/studies/{fingerprint}")
                if status == 200:
                    return json.loads(payload.decode("utf-8"))
                return None
            except ConnectionError:
                pass
        record = self._offline_queue().job(fingerprint)
        return record.to_wire() if record is not None else None

    def report(self, fingerprint: str) -> Optional[str]:
        """The stored report text, live or from the store; None when absent."""
        if self.daemon_alive():
            try:
                status, payload = self._request(f"/studies/{fingerprint}/report")
                if status == 200:
                    return payload.decode("utf-8")
                return None
            except ConnectionError:
                pass
        store = ResultStore(os.path.join(self.root, "store"), writer=False)
        stored = store.get(fingerprint)
        return stored.report_text() if stored is not None else None

    # -- offline plumbing ---------------------------------------------------------
    def service_config(self) -> Tuple[int, int]:
        """``(capacity, max_attempts)`` the root's daemon was configured
        with (``service.json`` leftovers), or the defaults for a root no
        daemon has served yet."""
        try:
            with open(self.config_path, "r", encoding="utf-8") as fh:
                data = json.load(fh)
            capacity = int(data.get("capacity", DEFAULT_CAPACITY))
            max_attempts = int(data.get("max_attempts", DEFAULT_MAX_ATTEMPTS))
            if capacity < 1 or max_attempts < 1:
                raise ValueError("non-positive bounds")
        except (OSError, ValueError, TypeError):
            return DEFAULT_CAPACITY, DEFAULT_MAX_ATTEMPTS
        return capacity, max_attempts

    def _offline_queue(self, writer: bool = False) -> StudyQueue:
        """A queue over the root's files.

        Read-only by default: replays without creating or truncating
        anything.  ``writer=True`` is valid only while holding the root's
        :class:`WriterLock` (the WAL handle truncates a torn tail on
        replay and appends on submit).
        """
        wal = ServiceWAL(os.path.join(self.root, "wal.jsonl"), writer=writer)
        capacity, max_attempts = self.service_config()
        return StudyQueue(wal, capacity=capacity, max_attempts=max_attempts)
