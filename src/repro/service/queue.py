"""The in-memory study queue over the WAL: admission, leases, retries.

The WAL is the queue's truth; this module is the state machine that edits
it.  Every transition appends to the WAL *first* and mutates memory only
after the append returned (write-ahead), so the in-memory picture is never
ahead of what a crash would preserve.

Three robustness rules govern it:

* **Admission control** -- the queue is bounded.  A submission past
  *capacity* raises :class:`AdmissionError` -- an explicit backpressure
  rejection, before anything touches the WAL -- rather than growing an
  unbounded backlog the daemon can never drain.  Resubmitting a known
  fingerprint is always admitted (it costs nothing: completed studies are
  answered from the store, pending ones return their current state).
* **Lease liveness on the monotonic clock** -- a claim grants a lease with
  a wall-clock-style deadline and a heartbeat, both measured with
  ``time.monotonic()`` and both compared only against the same clock, so
  an NTP step can neither spuriously expire a healthy lease nor keep a
  dead one alive.  Nothing clock-derived is persisted: across a restart,
  a lease is dead because its owning incarnation is (see
  :meth:`StudyQueue.recover`), not because a timestamp says so.
* **Bounded retries, poison quarantine** -- an expired, failed, or
  reclaimed lease requeues the study until its granted-lease count reaches
  *max_attempts*; after that the study is quarantined as poison, its error
  recorded, and the queue completes the rest of the backlog degraded --
  one pathological study must never wedge the service.
"""

from __future__ import annotations

import dataclasses
import functools
import threading
import time
from typing import Callable, Dict, List, Optional

from repro.service.spec import StudySpec
from repro.service.wal import DONE, LEASED, POISONED, QUEUED, JobRecord, ServiceWAL

DEFAULT_CAPACITY = 16
DEFAULT_MAX_ATTEMPTS = 3
DEFAULT_LEASE_TTL_S = 3600.0


class AdmissionError(Exception):
    """Backpressure: the bounded queue is full; resubmit later."""

    def __init__(self, capacity: int, backlog: int) -> None:
        super().__init__(
            f"queue full: {backlog} studies pending against capacity {capacity}"
        )
        self.capacity = capacity
        self.backlog = backlog


@dataclasses.dataclass
class Lease:
    """One live claim, tracked entirely on the monotonic clock."""

    fingerprint: str
    owner: str
    attempt: int
    granted_mono: float
    deadline_mono: float
    heartbeat_mono: float


@dataclasses.dataclass(frozen=True)
class SubmitResult:
    fingerprint: str
    state: str
    #: True when the study had already completed: serve the stored result.
    cached: bool


@dataclasses.dataclass(frozen=True)
class Claim:
    fingerprint: str
    spec: StudySpec
    attempt: int


def _locked(method):
    """Serialize a queue method under the instance lock.

    Submissions arrive on HTTP handler threads while the daemon's main
    loop claims and completes; every public transition and query holds
    the one reentrant lock, so the WAL append order always matches the
    in-memory transition order.
    """

    @functools.wraps(method)
    def wrapper(self, *args, **kwargs):
        with self._lock:
            return method(self, *args, **kwargs)

    return wrapper


class StudyQueue:
    """Bounded FIFO of studies with leased, liveness-checked claims."""

    def __init__(
        self,
        wal: ServiceWAL,
        capacity: int = DEFAULT_CAPACITY,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
        lease_ttl_s: float = DEFAULT_LEASE_TTL_S,
        heartbeat_timeout_s: Optional[float] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        if lease_ttl_s <= 0:
            raise ValueError(f"lease_ttl_s must be > 0, got {lease_ttl_s}")
        if heartbeat_timeout_s is not None and heartbeat_timeout_s <= 0:
            raise ValueError(
                f"heartbeat_timeout_s must be > 0, got {heartbeat_timeout_s}"
            )
        self.wal = wal
        self.capacity = capacity
        self.max_attempts = max_attempts
        self.lease_ttl_s = lease_ttl_s
        self.heartbeat_timeout_s = heartbeat_timeout_s
        self._clock = clock
        self._lock = threading.RLock()
        self._jobs, self._order = wal.replay()
        self._leases: Dict[str, Lease] = {}
        #: Lifetime counters for the telemetry plane.
        self.lease_expiries = 0
        self.rejections = 0

    # -- queries ------------------------------------------------------------------
    @_locked
    def job(self, fingerprint: str) -> Optional[JobRecord]:
        return self._jobs.get(fingerprint)

    @_locked
    def jobs(self) -> List[JobRecord]:
        return [self._jobs[fingerprint] for fingerprint in self._order]

    @_locked
    def lease_for(self, fingerprint: str) -> Optional[Lease]:
        return self._leases.get(fingerprint)

    @_locked
    def counts(self) -> Dict[str, int]:
        counts = {QUEUED: 0, LEASED: 0, DONE: 0, POISONED: 0}
        for job in self._jobs.values():
            counts[job.state] += 1
        return counts

    def depth(self) -> int:
        """Studies still owed work (queued + leased): the backlog gauge."""
        counts = self.counts()
        return counts[QUEUED] + counts[LEASED]

    def idle(self) -> bool:
        return self.depth() == 0

    # -- admission ----------------------------------------------------------------
    @_locked
    def submit(self, spec: StudySpec) -> SubmitResult:
        """Admit *spec*, idempotently; raise :class:`AdmissionError` when full."""
        fingerprint = spec.fingerprint()
        job = self._jobs.get(fingerprint)
        if job is not None:
            return SubmitResult(fingerprint, job.state, cached=job.state == DONE)
        if self.depth() >= self.capacity:
            self.rejections += 1
            raise AdmissionError(self.capacity, self.depth())
        self.wal.submit(fingerprint, spec.to_wire())
        self._jobs[fingerprint] = JobRecord(
            fingerprint=fingerprint, spec_wire=spec.to_wire(), seq=len(self._order)
        )
        self._order.append(fingerprint)
        return SubmitResult(fingerprint, QUEUED, cached=False)

    # -- leases -------------------------------------------------------------------
    @_locked
    def claim(self, owner: str) -> Optional[Claim]:
        """Lease the oldest queued study to *owner* (None when drained dry)."""
        for fingerprint in self._order:
            job = self._jobs[fingerprint]
            if job.state != QUEUED:
                continue
            attempt = job.attempts + 1
            self.wal.lease(fingerprint, owner, attempt, self.lease_ttl_s)
            job.state = LEASED
            job.owner = owner
            job.attempts = attempt
            now = self._clock()
            self._leases[fingerprint] = Lease(
                fingerprint=fingerprint,
                owner=owner,
                attempt=attempt,
                granted_mono=now,
                deadline_mono=now + self.lease_ttl_s,
                heartbeat_mono=now,
            )
            return Claim(fingerprint, StudySpec.from_wire(job.spec_wire), attempt)
        return None

    @_locked
    def heartbeat(self, fingerprint: str) -> None:
        lease = self._leases.get(fingerprint)
        if lease is not None:
            lease.heartbeat_mono = self._clock()

    @_locked
    def expired(self) -> List[Lease]:
        """Live leases past their deadline or with a stale heartbeat."""
        now = self._clock()
        gone = []
        for lease in self._leases.values():
            if now > lease.deadline_mono:
                gone.append(lease)
            elif (
                self.heartbeat_timeout_s is not None
                and now - lease.heartbeat_mono > self.heartbeat_timeout_s
            ):
                gone.append(lease)
        return gone

    @_locked
    def expire(self) -> List[str]:
        """Requeue (or quarantine) every expired lease; the reclaimed fps."""
        reclaimed = []
        for lease in self.expired():
            self.lease_expiries += 1
            self._release(
                lease.fingerprint,
                f"lease expired after {self.lease_ttl_s:.0f}s "
                f"(attempt {lease.attempt})",
            )
            reclaimed.append(lease.fingerprint)
        return reclaimed

    # -- transitions --------------------------------------------------------------
    @_locked
    def complete(self, fingerprint: str, digest: str, report: str) -> None:
        job = self._require(fingerprint)
        self.wal.complete(fingerprint, digest, report)
        job.state = DONE
        job.owner = ""
        job.digest = digest
        job.report = report
        self._leases.pop(fingerprint, None)

    @_locked
    def fail(self, fingerprint: str, error: str) -> str:
        """Record a failed attempt; returns the resulting state."""
        job = self._require(fingerprint)
        self.wal.failed(fingerprint, job.attempts, error)
        job.error = error
        self._release(fingerprint, error)
        return job.state

    @_locked
    def release_drained(self, fingerprint: str, owner: str) -> None:
        """Give a leased study back, un-failed (SIGTERM drain checkpoint)."""
        job = self._require(fingerprint)
        self.wal.drained(fingerprint, owner)
        job.state = QUEUED
        job.owner = ""
        # A drained attempt is not a failure: the lease grant stays counted
        # (the WAL already did), but nothing else changes.
        self._leases.pop(fingerprint, None)

    @_locked
    def recover(self, owner: str) -> List[str]:
        """Reclaim every lease held by a dead incarnation.

        Called once at daemon start, before any claim: a replayed lease
        whose owner is not *owner* belongs to a process that no longer
        exists (one daemon per root), so the study is requeued -- or
        quarantined, if its granted-lease count already reached the
        retry bound.  No clock is consulted: incarnation identity, not
        time, decides death across restarts.
        """
        reclaimed = []
        for fingerprint in self._order:
            job = self._jobs[fingerprint]
            if job.state == LEASED and job.owner != owner:
                self._release(
                    fingerprint, f"lease owner {job.owner or '?'} died mid-study"
                )
                reclaimed.append(fingerprint)
        return reclaimed

    # -- internals ----------------------------------------------------------------
    def _require(self, fingerprint: str) -> JobRecord:
        job = self._jobs.get(fingerprint)
        if job is None:
            raise KeyError(f"unknown study {fingerprint}")
        return job

    def _release(self, fingerprint: str, reason: str) -> None:
        """Requeue a lease-holding study, or quarantine it at the bound."""
        job = self._require(fingerprint)
        if job.attempts >= self.max_attempts:
            self.wal.poison(fingerprint, reason)
            job.state = POISONED
            job.error = reason
        else:
            self.wal.requeue(fingerprint, reason)
            job.state = QUEUED
        job.owner = ""
        self._leases.pop(fingerprint, None)
