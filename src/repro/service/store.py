"""The persistent results/corpus store: what the service accumulates.

The batch runner memoises studies per ``(config, fault_fingerprint)`` in a
process dict that dies with the process.  The store generalizes that cache
into something a service can trust across restarts:

* ``reports/<fingerprint>.txt`` -- the rendered study report, written
  atomically (temp file, fsync, rename), so a crash never leaves a
  half-report to serve;
* ``index.jsonl`` -- a checkpoint journal of study and segment records.
  Study records map a spec fingerprint to its report and digest (the
  durable memo the daemon answers resubmissions from); segment records
  key per-``(app, campaign, seed)`` outcome counts, so "what has campaign
  B ever done to this package under seed 17" is a query, not a re-run;
* ``corpus.jsonl`` -- one behaviour corpus for the whole service, merged
  (:meth:`~repro.guided.corpus.BehaviorCorpus.merge` -- deterministic,
  order-independent) with every guided study's discoveries, so knowledge
  of interesting intents accumulates across submissions instead of
  resetting per run.

Writes are idempotent by construction: studies are deterministic, so
re-storing a fingerprint after a crash-and-resume produces the same bytes,
and the index load deduplicates by fingerprint.  The commit point for "the
study is done" is the WAL's ``complete`` record, not the store -- the
store only has to be at-least-as-complete as the WAL claims, which
re-execution after a crash guarantees.
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
from typing import Dict, List, Optional

from repro.faults.journal import CheckpointJournal
from repro.guided.corpus import BehaviorCorpus

INDEX_VERSION = 1


@dataclasses.dataclass(frozen=True)
class StoredStudy:
    """One completed study as the store serves it back."""

    fingerprint: str
    digest: str
    report_path: str
    spec_wire: Dict[str, object]

    def report_text(self) -> str:
        with open(self.report_path, "r", encoding="utf-8") as fh:
            return fh.read()


@dataclasses.dataclass(frozen=True)
class SegmentRecord:
    """Per-(app, campaign, seed) outcome counts of one stored study."""

    app: str
    campaign: str
    seed: int
    fingerprint: str          # the study that produced it
    counts: Dict[str, int]


class ResultStore:
    """Durable, restart-surviving results under ``<root>/store/``.

    The daemon owns the store and opens it as the *writer* (the default):
    it creates the layout, repairs a torn index tail on load, and appends.
    Offline clients open with ``writer=False`` -- a read-only view that
    creates nothing, never truncates (a torn-looking tail may be a live
    daemon's append in flight), and loads empty when no index exists.
    """

    def __init__(self, root: str, writer: bool = True) -> None:
        self.root = str(root)
        self.writer = writer
        self.reports_dir = os.path.join(self.root, "reports")
        self.index_path = os.path.join(self.root, "index.jsonl")
        self.corpus_path = os.path.join(self.root, "corpus.jsonl")
        self._index = CheckpointJournal(self.index_path)
        if writer:
            os.makedirs(self.reports_dir, exist_ok=True)
            if not os.path.exists(self.index_path):
                self._index.start(
                    {"kind": "result-store", "index_version": INDEX_VERSION}
                )
        self._studies: Dict[str, StoredStudy] = {}
        self._segments: List[SegmentRecord] = []
        self._load()

    def _load(self) -> None:
        if not self.writer and not os.path.exists(self.index_path):
            return  # read-only view over a root with no store yet
        records = CheckpointJournal.load(self.index_path, truncate=self.writer)
        header = records[0]
        if header.get("kind") != "result-store":
            raise ValueError(f"{self.index_path}: not a result-store index")
        for record in records[1:]:
            kind = record.get("type")
            if kind == "study":
                fingerprint = record["fingerprint"]
                if fingerprint in self._studies:
                    continue  # idempotent re-store after a crash
                self._studies[fingerprint] = StoredStudy(
                    fingerprint=fingerprint,
                    digest=record.get("digest", ""),
                    report_path=os.path.join(self.reports_dir, f"{fingerprint}.txt"),
                    spec_wire=dict(record.get("spec", {})),
                )
            elif kind == "segment":
                self._segments.append(
                    SegmentRecord(
                        app=record["app"],
                        campaign=record["campaign"],
                        seed=int(record["seed"]),
                        fingerprint=record.get("fingerprint", ""),
                        counts={k: int(v) for k, v in record.get("counts", {}).items()},
                    )
                )

    # -- queries ------------------------------------------------------------------
    def get(self, fingerprint: str) -> Optional[StoredStudy]:
        study = self._studies.get(fingerprint)
        if study is not None and not os.path.exists(study.report_path):
            # Indexed but the report vanished (operator deleted it): treat
            # as absent so the study re-runs rather than serving a 500.
            return None
        return study

    def studies(self) -> List[StoredStudy]:
        return [self._studies[f] for f in sorted(self._studies)]

    def segments(
        self,
        app: Optional[str] = None,
        campaign: Optional[str] = None,
        seed: Optional[int] = None,
    ) -> List[SegmentRecord]:
        return [
            segment
            for segment in self._segments
            if (app is None or segment.app == app)
            and (campaign is None or segment.campaign == campaign)
            and (seed is None or segment.seed == seed)
        ]

    # -- writes -------------------------------------------------------------------
    @staticmethod
    def digest_of(report_text: str) -> str:
        return hashlib.sha256(report_text.encode("utf-8")).hexdigest()

    def put_study(
        self,
        fingerprint: str,
        spec_wire: Dict[str, object],
        report_text: str,
        segments: Optional[List[SegmentRecord]] = None,
    ) -> StoredStudy:
        """Persist a completed study; idempotent per fingerprint.

        Order matters for crash-safety: the report bytes land (atomically)
        before the index record that points at them, so the index never
        references a missing or partial report.
        """
        if not self.writer:
            raise RuntimeError(f"{self.root}: read-only store cannot put_study")
        existing = self._studies.get(fingerprint)
        if existing is not None and os.path.exists(existing.report_path):
            return existing
        report_path = os.path.join(self.reports_dir, f"{fingerprint}.txt")
        tmp = report_path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            fh.write(report_text)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, report_path)
        digest = self.digest_of(report_text)
        if existing is None:
            self._index.append(
                {
                    "type": "study",
                    "fingerprint": fingerprint,
                    "digest": digest,
                    "spec": dict(spec_wire),
                }
            )
            for segment in segments or []:
                self._index.append(
                    {
                        "type": "segment",
                        "app": segment.app,
                        "campaign": segment.campaign,
                        "seed": segment.seed,
                        "fingerprint": segment.fingerprint,
                        "counts": dict(segment.counts),
                    }
                )
                self._segments.append(segment)
        stored = StoredStudy(
            fingerprint=fingerprint,
            digest=digest,
            report_path=report_path,
            spec_wire=dict(spec_wire),
        )
        self._studies[fingerprint] = stored
        return stored

    # -- corpus accumulation ------------------------------------------------------
    def corpus(self) -> BehaviorCorpus:
        if os.path.exists(self.corpus_path):
            return BehaviorCorpus.load(self.corpus_path)
        return BehaviorCorpus()

    def merge_corpus(self, corpus: BehaviorCorpus) -> BehaviorCorpus:
        """Fold *corpus* into the persistent one; returns the merged corpus.

        The merge is deterministic and order-independent, so re-merging
        the same corpus after a crash cannot change the stored bytes, and
        any submission order of guided studies converges on one corpus.
        """
        if not self.writer:
            raise RuntimeError(f"{self.root}: read-only store cannot merge_corpus")
        merged = BehaviorCorpus.merge([self.corpus(), corpus])
        tmp_path = self.corpus_path + ".tmp"
        merged.save(tmp_path)
        os.replace(tmp_path, self.corpus_path)
        # BehaviorCorpus.save leaves no state snapshot, but be tidy if a
        # previous crash left one behind.
        stale = tmp_path + ".state"
        if os.path.exists(stale):  # pragma: no cover - crash-window debris
            os.remove(stale)
        return merged
