"""Study specs: the canonical, fingerprinted unit of submission.

A submission is a *description* of a study, not a command line: the spec
carries exactly the knobs that determine the study's output (config scale,
package subset, campaigns, the three chaos seeds, the worker count, the
guided-scheduler knobs) and nothing that doesn't (ports, directories,
timeouts).  Its fingerprint -- SHA-256 over the canonical JSON encoding --
is therefore the study's identity everywhere in the service: the WAL keys
submissions by it, leases claim it, the store files reports under it, and
resubmitting a spec that already completed is answered from the store
without running anything.  This generalizes the runner's in-process
``(config, fault_fingerprint)`` memo into a durable, restart-surviving
cache.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Dict, Optional, Tuple

from repro import faults
from repro.experiments.config import by_name
from repro.faults.plan import FaultPlan
from repro.qgj.campaigns import Campaign

SPEC_VERSION = 1

#: Study kinds the daemon can execute.  ``wear`` is the journalled,
#: checkpoint-resumable paper study; ``guided`` is the feedback-guided
#: study (deterministic end to end, so crash recovery re-runs it from
#: scratch to the identical report and corpus).
KINDS = ("wear", "guided")

SCHEDULERS = ("ucb", "thompson")


@dataclasses.dataclass(frozen=True)
class StudySpec:
    """One submitted study, canonically encoded and fingerprintable."""

    kind: str = "wear"
    config: str = "quick"
    #: Package subset; ``None`` means the full corpus.
    packages: Optional[Tuple[str, ...]] = None
    #: Campaign values ("A".."D"); ``None`` means all four.
    campaigns: Optional[Tuple[str, ...]] = None
    fault_seed: Optional[int] = None
    service_fault_seed: Optional[int] = None
    compat_skew: Optional[int] = None
    workers: int = 1
    #: Guided-study knobs (ignored for kind="wear").
    scheduler: str = "ucb"
    guided_budget: Optional[int] = None

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"kind must be one of {KINDS}, got {self.kind!r}")
        by_name(self.config)  # raises on an unknown scale
        if self.packages is not None:
            if not self.packages:
                raise ValueError("packages must be None or non-empty")
            object.__setattr__(self, "packages", tuple(self.packages))
        if self.campaigns is not None:
            if not self.campaigns:
                raise ValueError("campaigns must be None or non-empty")
            for value in self.campaigns:
                Campaign(value)  # raises on an unknown campaign
            object.__setattr__(self, "campaigns", tuple(self.campaigns))
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.scheduler not in SCHEDULERS:
            raise ValueError(
                f"scheduler must be one of {SCHEDULERS}, got {self.scheduler!r}"
            )
        if self.guided_budget is not None and self.guided_budget < 1:
            raise ValueError(f"guided_budget must be >= 1, got {self.guided_budget}")
        # Validate the chaos knobs eagerly: a spec that cannot build its
        # plan must be rejected at admission, not when leased.
        self.build_plan()

    # -- identity -----------------------------------------------------------------
    def to_wire(self) -> Dict[str, object]:
        wire: Dict[str, object] = {
            "spec_version": SPEC_VERSION,
            "kind": self.kind,
            "config": self.config,
            "workers": self.workers,
        }
        if self.packages is not None:
            wire["packages"] = list(self.packages)
        if self.campaigns is not None:
            wire["campaigns"] = list(self.campaigns)
        for key in ("fault_seed", "service_fault_seed", "compat_skew"):
            value = getattr(self, key)
            if value is not None:
                wire[key] = value
        if self.kind == "guided":
            wire["scheduler"] = self.scheduler
            if self.guided_budget is not None:
                wire["guided_budget"] = self.guided_budget
        return wire

    @classmethod
    def from_wire(cls, wire: Dict[str, object]) -> "StudySpec":
        version = wire.get("spec_version", SPEC_VERSION)
        if version != SPEC_VERSION:
            raise ValueError(f"spec version {version}, expected {SPEC_VERSION}")
        known = {
            "kind",
            "config",
            "packages",
            "campaigns",
            "fault_seed",
            "service_fault_seed",
            "compat_skew",
            "workers",
            "scheduler",
            "guided_budget",
        }
        unknown = set(wire) - known - {"spec_version"}
        if unknown:
            raise ValueError(f"unknown spec fields: {sorted(unknown)}")
        kwargs = {key: wire[key] for key in known if key in wire}
        for key in ("packages", "campaigns"):
            if kwargs.get(key) is not None:
                kwargs[key] = tuple(kwargs[key])
        return cls(**kwargs)

    def canonical(self) -> str:
        """Deterministic JSON: defaults elided, keys sorted."""
        return json.dumps(self.to_wire(), sort_keys=True)

    def fingerprint(self) -> str:
        """The study's identity across the WAL, leases, and the store."""
        return hashlib.sha256(self.canonical().encode("utf-8")).hexdigest()[:16]

    # -- execution inputs ---------------------------------------------------------
    def build_plan(self) -> Optional[FaultPlan]:
        """The fault plan this spec's chaos knobs compose to (or ``None``)."""
        return faults.compose_plan(
            fault_seed=self.fault_seed,
            service_fault_seed=self.service_fault_seed,
            compat_skew=self.compat_skew,
        )

    def campaign_values(self) -> Tuple[Campaign, ...]:
        if self.campaigns is None:
            return tuple(Campaign)
        return tuple(Campaign(value) for value in self.campaigns)

    def describe(self) -> str:
        """One status line: kind, scale, and the non-default knobs."""
        parts = [self.kind, self.config]
        if self.packages is not None:
            parts.append(f"{len(self.packages)} pkg")
        if self.campaigns is not None:
            parts.append("campaigns " + "".join(self.campaigns))
        for label, value in (
            ("seed", self.fault_seed),
            ("svc", self.service_fault_seed),
            ("skew", self.compat_skew),
        ):
            if value is not None:
                parts.append(f"{label}={value}")
        if self.workers != 1:
            parts.append(f"workers={self.workers}")
        if self.kind == "guided":
            parts.append(self.scheduler)
            if self.guided_budget is not None:
                parts.append(f"budget={self.guided_budget}")
        return " ".join(parts)
