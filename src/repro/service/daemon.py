"""The fuzzing-as-a-service daemon: claim, execute, recover, drain.

One daemon owns one service root::

    <root>/wal.jsonl         the durable study queue (write-ahead log)
    <root>/wal.lock          the WAL writer flock (kernel-released on death)
    <root>/store/            reports, (app, campaign, seed) index, corpus
    <root>/jobs/<fp>/        per-study checkpoint journals while running
    <root>/daemon.json       discovery: pid, HTTP port, incarnation id
    <root>/service.json      configured admission bounds (left behind on
                             exit so offline clients admit consistently)

Ownership is a kernel lock, not a convention: the daemon takes an
exclusive flock on ``wal.lock`` before replaying the WAL and holds it for
its lifetime, so offline clients can never append to a log this daemon
has already cached in memory (see :mod:`repro.service.lock`), and a
second daemon on the same root fails fast instead of double-claiming.

The daemon is designed backwards from its own death.  Every transition is
WAL-first; study execution checkpoints through the existing farm
journal/manifest machinery; and startup is a *recovery scan*: replay the
WAL (truncating any torn tail), reclaim leases held by dead incarnations,
and let the normal claim loop resume each reclaimed study from its shard
checkpoints.  ``kill -9`` at any point is therefore just an unusually
blunt restart -- the recovered run completes to a report byte-identical
to an uninterrupted one, because studies are deterministic and resume is
bit-identical (the PR-2/PR-4 contract this service inherits).

Liveness is monotonic-clock-only in process and incarnation-based across
restarts; no wall-clock timestamp ever decides whether work is alive.

Signals: the first SIGTERM/SIGINT requests a graceful drain -- finish the
leased study, checkpoint, release cleanly, exit 130 with every remaining
submission still queued in the WAL.  A second signal aborts the in-flight
farm run the hard way (still resumable: that is what the journals are
for), releases the lease as drained, and exits 130.
"""

from __future__ import annotations

import errno
import json
import os
import shutil
import signal
import socket
import threading
import time
import traceback
import uuid
from typing import List, Optional

from repro import faults, telemetry
from repro.experiments.config import by_name
from repro.farm import StudyManifest
from repro.farm.health import ShardPoisonedError, StudyInterrupted
from repro.service.lock import WriterLock
from repro.service.queue import Claim, StudyQueue, SubmitResult
from repro.service.spec import StudySpec
from repro.service.store import ResultStore, SegmentRecord
from repro.service.wal import DONE, ServiceWAL
from repro.telemetry.metrics import (
    SERVICE_JOBS_RECOVERED,
    SERVICE_LEASE_EXPIRIES,
    SERVICE_QUEUE_DEPTH,
    SERVICE_REJECTED,
    SERVICE_STUDIES_COMPLETED,
)

#: Exit codes (the CLI exposes these; see the runner's exit-code table).
EXIT_IDLE = 0
EXIT_DRAINED = 130


class RootLockedError(RuntimeError):
    """Another live process holds the root's WAL writer lock."""


class SimulatedCrash(BaseException):
    """Test-only stand-in for ``kill -9``: unwinds with no cleanup.

    Derives from ``BaseException`` so no recovery path in the daemon can
    accidentally swallow it -- the crash tests rely on the process state
    being exactly what a real SIGKILL would leave behind (modulo the
    interpreter exiting).
    """


class CrashPoint:
    """Counts durability boundaries; optionally crashes at the Nth.

    The crash/recovery property tests run the daemon once with no limit to
    count the boundaries, then once per boundary index with ``limit=i`` to
    simulate ``kill -9`` exactly there.
    """

    def __init__(self, limit: Optional[int] = None) -> None:
        self.limit = limit
        self.count = 0
        self.labels: List[str] = []

    def tick(self, label: str) -> None:
        self.count += 1
        self.labels.append(label)
        if self.limit is not None and self.count >= self.limit:
            raise SimulatedCrash(f"simulated kill -9 at boundary {label}")


class _NoCrash:
    """The free default: no counting, no crashing."""

    def tick(self, label: str) -> None:
        pass


_NO_CRASH = _NoCrash()


class ServiceDaemon:
    """One incarnation of the service over a root directory."""

    def __init__(
        self,
        root: str,
        capacity: int = 16,
        max_attempts: int = 3,
        lease_ttl_s: float = 3600.0,
        poll_interval_s: float = 0.2,
        http_port: Optional[int] = None,
        enable_telemetry: bool = True,
        crash_point: Optional[CrashPoint] = None,
    ) -> None:
        self.root = str(root)
        os.makedirs(self.root, exist_ok=True)
        self.jobs_dir = os.path.join(self.root, "jobs")
        self.discovery_path = os.path.join(self.root, "daemon.json")
        self.config_path = os.path.join(self.root, "service.json")
        #: Incarnation id: lease ownership and cross-restart death detection.
        self.owner = f"{socket.gethostname()}:{os.getpid()}:{uuid.uuid4().hex[:8]}"
        self.poll_interval_s = poll_interval_s
        self.http_port = http_port
        self.crash = crash_point if crash_point is not None else _NO_CRASH
        # The writer lock must be ours before the queue below replays the
        # WAL: replay truncates a torn tail, which is only safe when no
        # other process can be mid-append on the same file.
        self._wal_lock = WriterLock(self.root)
        if not self._wal_lock.acquire():
            raise RootLockedError(
                f"{self.root}: another process holds the WAL writer lock "
                "(a daemon is already serving this root)"
            )
        try:
            self.wal = ServiceWAL(os.path.join(self.root, "wal.jsonl"), writer=True)
            self.store = ResultStore(os.path.join(self.root, "store"))
            self.queue = StudyQueue(
                self.wal,
                capacity=capacity,
                max_attempts=max_attempts,
                lease_ttl_s=lease_ttl_s,
            )
        except BaseException:  # corrupt WAL/store: don't leak the writer role
            self._wal_lock.release()
            raise
        self.started_mono = time.monotonic()
        self.jobs_recovered = 0
        self.studies_completed = 0
        self._drain_requested = False
        self._hard_drain = False
        self._stop_requested = False
        self._executing: Optional[str] = None
        self._old_handlers = {}
        self._server = None
        self._telemetry = None
        if enable_telemetry:
            self._telemetry = telemetry.enable()

    # -- startup / recovery -------------------------------------------------------
    def recover(self) -> List[str]:
        """Reclaim every lease a dead incarnation still holds.

        Returns the reclaimed fingerprints.  Requeued studies resume from
        their checkpoint journals when the claim loop reaches them; the
        torn-tail bytes the WAL replay truncated (if any) are surfaced in
        ``wal.recovered_bytes``.
        """
        reclaimed = self.queue.recover(self.owner)
        self.jobs_recovered += len(reclaimed)
        self._publish_metrics()
        self.crash.tick("recover")
        return reclaimed

    def start(self) -> None:
        """Recover, publish discovery, and (optionally) start the HTTP API."""
        try:
            self.recover()
            self._write_config()
            if self.http_port is not None:
                from repro.service.http_api import StatusServer

                self._server = StatusServer(self, port=self.http_port)
                self._server.start()
            self._write_discovery()
        except SimulatedCrash:
            # A real SIGKILL drops the flock with the process; emulate the
            # kernel's fd cleanup so in-process crash tests can restart.
            self._wal_lock.release()
            raise

    def _atomic_json(self, path: str, payload: dict) -> None:
        tmp = path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, sort_keys=True)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)

    def _write_discovery(self) -> None:
        self._atomic_json(
            self.discovery_path,
            {
                "pid": os.getpid(),
                "owner": self.owner,
                "root": os.path.abspath(self.root),
                "port": self._server.port if self._server is not None else None,
            },
        )

    def _write_config(self) -> None:
        """Leave the admission bounds behind for offline clients.

        Unlike discovery this file survives shutdown on purpose: an
        offline submission admits against the capacity the root's daemon
        was actually configured with, not a hardcoded default.
        """
        self._atomic_json(
            self.config_path,
            {
                "capacity": self.queue.capacity,
                "max_attempts": self.queue.max_attempts,
                "lease_ttl_s": self.queue.lease_ttl_s,
            },
        )

    # -- submissions (HTTP handlers and in-process clients land here) -------------
    def submit(self, spec: StudySpec) -> SubmitResult:
        try:
            result = self.queue.submit(spec)
            self._publish_metrics()
            self.crash.tick("wal:submit")
        except SimulatedCrash:
            self._wal_lock.release()  # see start(): simulated kernel cleanup
            raise
        return result

    # -- the serving loop ---------------------------------------------------------
    def serve_forever(self, until_idle: bool = False) -> int:
        """Process the queue; returns the process exit code.

        *until_idle* turns the daemon into a batch drainer: it exits 0
        once nothing is queued or leased (CI and the tests use this; a
        production daemon runs without it until signalled).
        """
        self._install_handlers()
        try:
            while not self._drain_requested and not self._stop_requested:
                try:
                    # Between executions every live lease is foreign (ours
                    # are released synchronously), so expiry cannot
                    # double-run.
                    expired = self.queue.expire()
                    if expired:
                        self._publish_metrics()
                    claim = self.queue.claim(self.owner)
                    if claim is None:
                        if until_idle:
                            return EXIT_IDLE
                        time.sleep(self.poll_interval_s)
                        continue
                    self._publish_metrics()
                    self.crash.tick("wal:lease")
                    self._run_claim(claim)
                except KeyboardInterrupt:
                    # A second signal landed between claims (the poll
                    # sleep, expire, claim): same contract as mid-study --
                    # take the drain exit, not a traceback.
                    self._drain_requested = True
        finally:
            self._restore_handlers()
            self._executing = None
            if self._server is not None:
                self._server.stop()
            if self._telemetry is not None:
                telemetry.disable()
            self._remove_discovery()
            self._wal_lock.release()
        return EXIT_DRAINED if self._drain_requested else EXIT_IDLE

    def request_drain(self) -> None:
        """Programmatic SIGTERM: finish leased work, then exit 130."""
        self._drain_requested = True

    def request_stop(self) -> None:
        """Stop the loop without the drain exit code (tests, embedding)."""
        self._stop_requested = True

    # -- executing one claim ------------------------------------------------------
    def _run_claim(self, claim: Claim) -> None:
        self._executing = claim.fingerprint
        ticker = _HeartbeatTicker(self.queue, claim.fingerprint)
        ticker.start()
        try:
            self._execute(claim)
        except StudyInterrupted:
            # The farm drained mid-study on our signal: the shard journals
            # hold every completed segment; give the lease back un-failed.
            self.queue.release_drained(claim.fingerprint, self.owner)
            self._drain_requested = True
        except ShardPoisonedError as exc:
            self._fail(claim, f"shards poisoned: {exc}")
        except SimulatedCrash:
            raise
        except KeyboardInterrupt:
            # Hard drain mid-study at workers=1: the wear journal has the
            # completed segments; release and leave.
            self.queue.release_drained(claim.fingerprint, self.owner)
            self._drain_requested = True
        except Exception:
            self._fail(claim, traceback.format_exc(limit=20))
        finally:
            ticker.stop()
            self._executing = None
            self._publish_metrics()

    def _fail(self, claim: Claim, error: str) -> None:
        state = self.queue.fail(claim.fingerprint, error)
        self.crash.tick("wal:release")
        if state == DONE:  # pragma: no cover - fail cannot complete a study
            raise AssertionError("fail() completed a study")

    def _execute(self, claim: Claim) -> None:
        """Run (or serve from the store) one leased study."""
        stored = self.store.get(claim.fingerprint)
        if stored is None:
            spec = claim.spec
            plan = spec.build_plan()
            with faults.session(plan):
                if spec.kind == "wear":
                    report, segments = self._run_wear(claim, spec)
                else:
                    report, segments = self._run_guided(claim, spec)
            stored = self.store.put_study(
                claim.fingerprint, spec.to_wire(), report, segments
            )
            self.crash.tick("store:report")
        self.queue.complete(claim.fingerprint, stored.digest, stored.report_path)
        self.studies_completed += 1
        self.crash.tick("wal:complete")
        shutil.rmtree(self._job_dir(claim.fingerprint), ignore_errors=True)

    def _job_dir(self, fingerprint: str) -> str:
        return os.path.join(self.jobs_dir, fingerprint)

    def _run_wear(self, claim: Claim, spec: StudySpec):
        """The journalled paper study: resumable at any checkpoint."""
        from repro.experiments.wear_experiment import run_wear_study

        job_dir = self._job_dir(claim.fingerprint)
        os.makedirs(job_dir, exist_ok=True)
        journal_path = os.path.join(job_dir, "journal")
        resume = False
        if os.path.exists(journal_path):
            try:
                StudyManifest(journal_path).header()
                resume = True
            except (OSError, ValueError):
                # A crash before the manifest header landed: start fresh.
                resume = False
        result = run_wear_study(
            by_name(spec.config),
            packages=list(spec.packages) if spec.packages is not None else None,
            campaigns=spec.campaign_values(),
            journal_path=journal_path,
            resume=resume,
            workers=spec.workers,
        )
        report = (
            result.summary.render()
            + "\n"
            + f"{result.intents_sent} intents, {result.reboot_count} reboots, "
            f"{result.virtual_hours():.1f} virtual hours\n"
        )
        seed = by_name(spec.config).corpus_seed
        segments = [
            SegmentRecord(
                app=app.package,
                campaign=app.campaign.value,
                seed=seed,
                fingerprint=claim.fingerprint,
                counts={
                    "sent": app.sent,
                    "crashes": app.crashes_seen,
                    "rebooted": int(app.rebooted),
                },
            )
            for app in result.summary.apps
        ]
        return report, segments

    def _run_guided(self, claim: Claim, spec: StudySpec):
        """The guided study: deterministic end to end, so recovery re-runs.

        No mid-study checkpoint exists (guided rounds re-shard dynamically),
        but the whole run is a pure function of its spec -- a crashed
        attempt re-executes to the identical report and corpus, and the
        corpus merge into the store is idempotent.
        """
        from repro.guided import GuidedConfig, run_guided_study

        result = run_guided_study(
            by_name(spec.config),
            GuidedConfig(scheduler=spec.scheduler, budget=spec.guided_budget),
            packages=list(spec.packages) if spec.packages is not None else None,
            workers=spec.workers,
        )
        self.store.merge_corpus(result.corpus)
        self.crash.tick("store:corpus")
        segments = [
            SegmentRecord(
                app=arm["package"],
                campaign=arm["campaign"],
                seed=result.guided.seed,
                fingerprint=claim.fingerprint,
                counts={
                    "plays": arm["plays"],
                    "intents": arm["intents"],
                    "novel": arm["novel"],
                },
            )
            for arm in result.scheduler_snapshot["arms"]
        ]
        return result.render(), segments

    # -- signals ------------------------------------------------------------------
    def _on_signal(self, signum, frame):
        if self._drain_requested:
            self._hard_drain = True
            raise KeyboardInterrupt
        self._drain_requested = True

    def _install_handlers(self) -> None:
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                self._old_handlers[sig] = signal.signal(sig, self._on_signal)
            except ValueError:  # not the main thread (tests embed the loop)
                pass

    def _restore_handlers(self) -> None:
        for sig, handler in self._old_handlers.items():
            signal.signal(sig, handler)
        self._old_handlers = {}

    # -- status / telemetry -------------------------------------------------------
    def status(self) -> dict:
        counts = self.queue.counts()
        return {
            "owner": self.owner,
            "pid": os.getpid(),
            "root": os.path.abspath(self.root),
            "uptime_s": round(time.monotonic() - self.started_mono, 3),
            "executing": self._executing,
            "draining": self._drain_requested,
            "queue": counts,
            "depth": self.queue.depth(),
            "capacity": self.queue.capacity,
            "lease_expiries": self.queue.lease_expiries,
            "rejections": self.queue.rejections,
            "jobs_recovered": self.jobs_recovered,
            "studies_completed": self.studies_completed,
            "wal_recovered_bytes": self.wal.recovered_bytes,
        }

    def _publish_metrics(self) -> None:
        handle = telemetry.get()
        if not handle.enabled:
            return
        counts = self.queue.counts()
        handle.metrics.gauge(
            SERVICE_QUEUE_DEPTH,
            "Studies queued or leased, by state.",
            ("state",),
        ).labels(state="queued").set(counts["queued"])
        handle.metrics.gauge(
            SERVICE_QUEUE_DEPTH,
            "Studies queued or leased, by state.",
            ("state",),
        ).labels(state="leased").set(counts["leased"])
        for name, help_text, level in (
            (
                SERVICE_LEASE_EXPIRIES,
                "Leases past deadline or heartbeat, reclaimed.",
                self.queue.lease_expiries,
            ),
            (
                SERVICE_JOBS_RECOVERED,
                "Leased studies reclaimed from dead incarnations at startup.",
                self.jobs_recovered,
            ),
            (
                SERVICE_REJECTED,
                "Submissions rejected by admission control.",
                self.queue.rejections,
            ),
            (
                SERVICE_STUDIES_COMPLETED,
                "Studies completed by this incarnation.",
                self.studies_completed,
            ),
        ):
            counter = handle.metrics.counter(name, help_text)
            delta = level - counter.total()
            if delta > 0:
                counter.inc(delta)

    def _remove_discovery(self) -> None:
        try:
            os.remove(self.discovery_path)
        except OSError as exc:  # pragma: no cover - already gone
            if exc.errno != errno.ENOENT:
                raise


class _HeartbeatTicker(threading.Thread):
    """Beats the executing study's lease so observers see it alive."""

    def __init__(self, queue: StudyQueue, fingerprint: str, every_s: float = 1.0):
        super().__init__(daemon=True, name=f"lease-heartbeat-{fingerprint[:8]}")
        self._queue = queue
        self._fingerprint = fingerprint
        self._every_s = every_s
        self._stop_event = threading.Event()

    def run(self) -> None:
        while not self._stop_event.wait(self._every_s):
            self._queue.heartbeat(self._fingerprint)

    def stop(self) -> None:
        self._stop_event.set()
        self.join(timeout=2.0)
