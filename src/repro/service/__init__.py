"""Fuzzing-as-a-service: the crash-safe daemon around the batch pipeline.

The batch CLI runs one study and exits; the ROADMAP's north star is a
*service* that accumulates results across submissions and survives its own
host failing -- the same robustness bar the chaos plane holds the campaigns
to (an orchestrator that injects crash/kill/hang faults must itself
tolerate them).  This package is that promotion, built robustness-first:

* :mod:`repro.service.spec` -- :class:`StudySpec`, the canonical,
  fingerprinted description of one submitted study;
* :mod:`repro.service.wal` -- the durable write-ahead study queue: an
  append-only JSONL log of submit/lease/complete/requeue/poison
  transitions, fsynced per append, torn-tail tolerant on replay (the
  writer handle truncates the tail; reader handles never modify the file);
* :mod:`repro.service.lock` -- the WAL writer role as a kernel ``flock``
  on ``<root>/wal.lock``: held by the daemon for its lifetime, taken by
  clients for offline submission, released by the kernel on death;
* :mod:`repro.service.queue` -- the in-memory state machine over the WAL:
  admission control with explicit backpressure, lease-based claims with
  ``time.monotonic()`` heartbeat/deadline liveness, bounded retries and
  poison quarantine;
* :mod:`repro.service.store` -- the persistent results/corpus store keyed
  by ``(app, campaign, seed)``, generalizing the runner's in-process
  fingerprint cache and merging guided behaviour corpora across runs;
* :mod:`repro.service.daemon` -- the long-running daemon: recovery scan on
  start (reclaim dead leases, resume journalled studies from their shard
  checkpoints), graceful SIGTERM drain to exit 130;
* :mod:`repro.service.http_api` -- the HTTP status API serving queue
  state, per-study reports, and the live Prometheus/dumpsys exposition;
* :mod:`repro.service.client` / :mod:`repro.service.cli` -- the
  ``python -m repro serve | submit | status`` surface.

The recovery contract is the package's reason to exist: ``kill -9`` the
daemon at *any* point -- mid-append, mid-lease, mid-study -- and a restart
replays the WAL, requeues the interrupted study, resumes it from its shard
checkpoint journals, and stores a report byte-identical to the one an
uninterrupted daemon would have produced.  Resubmitting a completed
fingerprint never re-runs anything: the stored result is served.
"""

from __future__ import annotations

from repro.service.client import ServiceClient
from repro.service.daemon import RootLockedError, ServiceDaemon, SimulatedCrash
from repro.service.lock import WriterLock
from repro.service.queue import AdmissionError, StudyQueue
from repro.service.spec import StudySpec
from repro.service.store import ResultStore
from repro.service.wal import ServiceWAL

__all__ = [
    "AdmissionError",
    "ResultStore",
    "RootLockedError",
    "ServiceClient",
    "ServiceDaemon",
    "ServiceWAL",
    "SimulatedCrash",
    "StudyQueue",
    "StudySpec",
    "WriterLock",
]
