"""Qui-Gon Jinn (QGJ): the paper's fuzz-testing tool.

* :mod:`repro.qgj.campaigns` -- the four Fuzz Intent Campaigns of Table I.
* :mod:`repro.qgj.fuzzer` -- the shared Fuzzer library (pacing, injection,
  reboot-aware app sweeps).
* :mod:`repro.qgj.master` -- QGJ Mobile + QGJ Wear and their MessageAPI /
  DataAPI protocol (Fig. 1a).
* :mod:`repro.qgj.monkey` -- the Monkey-style UI event generator and its
  log grammar.
* :mod:`repro.qgj.ui_fuzzer` -- QGJ-UI: parse the monkey log, mutate events
  (semi-valid / random), replay through adb shell (Fig. 1b).
"""

from repro.qgj.campaigns import (
    Campaign,
    FuzzIntent,
    campaign_size,
    generate,
    table1_rows,
)
from repro.qgj.fuzzer import (
    PAPER_CONFIG,
    QGJ_MOBILE_PACKAGE,
    QGJ_WEAR_PACKAGE,
    QUICK_CONFIG,
    FuzzConfig,
    FuzzerLibrary,
)
from repro.qgj.lint import (
    LintCorrelation,
    LintFinding,
    Severity,
    correlate,
    lint_device,
    lint_package,
    render_report,
)
from repro.qgj.master import QGJMobile, QGJWear, deploy
from repro.qgj.monkey import Monkey, MonkeyEvent, format_event, parse_monkey_log
from repro.qgj.results import AppRunResult, ComponentRunResult, FuzzSummary
from repro.qgj.triage import (
    CrashBucket,
    CrashProber,
    CrashSignature,
    TriageReport,
    minimize_intent,
    triage_app,
)
from repro.qgj.ui_fuzzer import (
    EventMutator,
    MutationMode,
    QGJUi,
    UiInjectionResult,
    event_to_shell,
    render_table5,
)

__all__ = [
    "AppRunResult",
    "Campaign",
    "ComponentRunResult",
    "CrashBucket",
    "CrashProber",
    "CrashSignature",
    "TriageReport",
    "minimize_intent",
    "triage_app",
    "EventMutator",
    "FuzzConfig",
    "FuzzIntent",
    "FuzzSummary",
    "FuzzerLibrary",
    "LintCorrelation",
    "LintFinding",
    "Severity",
    "correlate",
    "lint_device",
    "lint_package",
    "render_report",
    "Monkey",
    "MonkeyEvent",
    "MutationMode",
    "PAPER_CONFIG",
    "QGJMobile",
    "QGJUi",
    "QGJWear",
    "QGJ_MOBILE_PACKAGE",
    "QGJ_WEAR_PACKAGE",
    "QUICK_CONFIG",
    "UiInjectionResult",
    "campaign_size",
    "deploy",
    "event_to_shell",
    "format_event",
    "generate",
    "parse_monkey_log",
    "render_table5",
    "table1_rows",
]
