"""QGJ-UI: the mutational UI-event fuzzer (the paper's Fig. 1b).

Pipeline, as in Section III-E:

    ⑤ Monkey runs on the target device, generating UI events (some of which
      are intents, e.g. app switches).
    ⑥ The monkey log is parsed to recover the events.
    ⑦ Each event is mutated -- **semi-valid** (an argument is replaced with
      another valid value *observed for that argument during the
      experiment*) or **random** (arguments replaced with a random ASCII
      string or numeric value, depending on type; e.g.
      ``input tap -8803.85 4668.17``).
    ⑧ The mutated events are replayed through ``adb shell`` utilities
      (``input``, ``am``, ``pm``).

Exception/crash accounting matches Table V's columns: every replayed event
is one *injected event*; exceptions are tool-handled exceptions plus
app-logged and fatal exceptions found in the device log (SecurityExceptions
excluded, as in the paper's exception accounting); crashes are fatal
app-process deaths.
"""

from __future__ import annotations

import contextlib
import dataclasses
import random
import string
from collections import defaultdict
from typing import Dict, List, Optional, Sequence

from repro.android.device import Device
from repro.faults.retry import RetryPolicy
from repro.qgj.monkey import Monkey, MonkeyEvent, parse_monkey_log
from repro.telemetry.metrics import UI_CRASHES, UI_EVENTS, UI_EXCEPTIONS

_RANDOM_ASCII = string.ascii_letters + string.digits + "$@!%.:#?&=_-"


class MutationMode:
    SEMI_VALID = "semi-valid"
    RANDOM = "random"

    ALL = (SEMI_VALID, RANDOM)


@dataclasses.dataclass
class UiInjectionResult:
    """Table V's row for one mutation mode."""

    mode: str
    injected_events: int = 0
    tool_exceptions: int = 0
    app_exceptions: int = 0
    crashes: int = 0
    reached_app: int = 0

    @property
    def exceptions_raised(self) -> int:
        return self.tool_exceptions + self.app_exceptions

    def exception_rate(self) -> float:
        if self.injected_events == 0:
            return 0.0
        return self.exceptions_raised / self.injected_events

    def crash_rate(self) -> float:
        if self.injected_events == 0:
            return 0.0
        return self.crashes / self.injected_events


class EventMutator:
    """Implements the two mutation strategies over a parsed event pool."""

    def __init__(self, events: Sequence[MonkeyEvent], seed: int = 0) -> None:
        self._rng = random.Random(seed)
        #: Observed valid values per (kind, slot) -- the semi-valid pool.
        self._observed: Dict[tuple, List[object]] = defaultdict(list)
        for event in events:
            for slot, _ in event.schema():
                self._observed[(event.kind, slot)].append(event.args[slot])

    def mutate(self, event: MonkeyEvent, mode: str) -> MonkeyEvent:
        """Mutate every argument of *event*, per the paper's Section III-E.

        Semi-valid replaces each argument with "another valid value for that
        argument that had been observed during the experiment"; random
        replaces them "with a random ASCII string or a float value
        (depending on type)" -- which is why the paper's example random tap
        (``input tap -8803.85 4668.17``) lands nowhere near the screen.
        """
        mutant = event.copy()
        if mode == MutationMode.SEMI_VALID:
            for slot, _slot_type in event.schema():
                pool = self._observed[(event.kind, slot)]
                if pool:
                    mutant.args[slot] = self._rng.choice(pool)
            return mutant
        if mode == MutationMode.RANDOM:
            for slot, slot_type in event.schema():
                mutant.args[slot] = self._random_value(slot_type)
            return mutant
        raise ValueError(f"unknown mutation mode: {mode}")

    def _random_value(self, slot_type: type) -> object:
        if slot_type is float:
            # The paper's example: input tap -8803.85 4668.17
            return round(self._rng.uniform(-10_000, 10_000), 2)
        if slot_type is int:
            return self._rng.randint(-(2**31), 2**31 - 1)
        length = self._rng.randint(4, 20)
        return "".join(self._rng.choice(_RANDOM_ASCII) for _ in range(length))


def event_to_shell(event: MonkeyEvent) -> str:
    """Lower one (possibly mutated) event to an adb shell command line."""
    a = event.args
    if event.kind == "touch":
        return f"input tap {a['x']} {a['y']}"
    if event.kind == "swipe":
        return f"input swipe {a['x1']} {a['y1']} {a['x2']} {a['y2']}"
    if event.kind == "trackball":
        return f"input trackball roll {a['dx']} {a['dy']}"
    if event.kind in ("keyevent_nav", "keyevent_sys"):
        return f"input keyevent {a['code']}"
    if event.kind == "text":
        return f"input text '{a['text']}'"
    if event.kind == "appswitch":
        return (
            "am start -a android.intent.action.MAIN"
            " -c android.intent.category.LAUNCHER"
            f" -n '{a['component']}'"
        )
    if event.kind == "permission":
        return f"pm grant '{a['package']}' '{a['permission']}'"
    raise ValueError(f"unknown kind: {event.kind}")


class QGJUi:
    """The QGJ-UI driver: monkey → parse → mutate → replay via adb."""

    def __init__(self, device: Device, seed: int = 0) -> None:
        self._device = device
        self._seed = seed

    def run(
        self,
        event_count: int,
        modes: Sequence[str] = MutationMode.ALL,
        pacing_ms: float = 20.0,
    ) -> Dict[str, UiInjectionResult]:
        """Run the full pipeline once per mutation mode.

        The same base event stream (same monkey seed) feeds both modes,
        matching the paper's identical per-mode event counts (41,405 each).
        """
        monkey = Monkey(self._device, seed=self._seed)
        log_text = monkey.run(event_count)
        events = parse_monkey_log(log_text)
        results: Dict[str, UiInjectionResult] = {}
        for mode in modes:
            results[mode] = self._replay(events, mode, pacing_ms)
        return results

    def _replay(
        self, events: Sequence[MonkeyEvent], mode: str, pacing_ms: float
    ) -> UiInjectionResult:
        # str.__hash__ is salted per process; derive the per-mode seed from
        # the mode's bytes so runs are reproducible across interpreters.
        mode_salt = sum(mode.encode())
        mutator = EventMutator(events, seed=self._seed + mode_salt)
        adb = self._device.adb
        logcat = self._device.logcat
        result = UiInjectionResult(mode=mode)
        log_mark = len(logcat)
        t = self._device.runtime.telemetry
        profiler = t.profiler
        with contextlib.ExitStack() as stack:
            if t.enabled:
                stack.enter_context(
                    t.tracer.span("ui_replay", clock=self._device.clock, mode=mode)
                )
            if profiler.enabled:
                # One phase for the whole replay: mutation + shell lowering
                # is "ui" self-time; dispatch and logging nest beneath it.
                profiler.enter("ui")
                stack.callback(profiler.exit)
            plane = self._device.runtime.faults
            retry = RetryPolicy()
            for event in events:
                mutant = mutator.mutate(event, mode)
                shell_line = event_to_shell(mutant)
                if plane.armed:
                    # A dropped adb session loses this event's shell; the
                    # harness reconnects with backoff and re-issues it.
                    shell_result = retry.run(
                        lambda line=shell_line: adb.shell(line),
                        self._device.clock,
                        key=("ui", mode, result.injected_events),
                    )
                else:
                    shell_result = adb.shell(shell_line)
                result.injected_events += 1
                if shell_result.reached_app:
                    result.reached_app += 1
                if shell_result.caused_crash:
                    result.crashes += 1
                if shell_result.tool_exception is not None:
                    if not shell_result.caused_crash and not _is_security(
                        shell_result.tool_exception
                    ):
                        result.tool_exceptions += 1
                self._device.clock.sleep(pacing_ms)
        result.app_exceptions = _count_app_exceptions(logcat, log_mark)
        if t.enabled:
            self._count_replay(t, events, result)
        return result

    @staticmethod
    def _count_replay(
        t, events: Sequence[MonkeyEvent], result: UiInjectionResult
    ) -> None:
        metrics = t.metrics
        injected = metrics.counter(
            UI_EVENTS, "Mutated UI events replayed through adb shell.", ("mode", "kind")
        )
        tally: Dict[str, int] = defaultdict(int)
        for event in events:
            tally[event.kind] += 1
        for kind, n in sorted(tally.items()):
            injected.labels(mode=result.mode, kind=kind).inc(n)
        metrics.counter(
            UI_CRASHES, "App crashes caused by replayed UI events.", ("mode",)
        ).labels(mode=result.mode).inc(result.crashes)
        exceptions = metrics.counter(
            UI_EXCEPTIONS,
            "Exceptions raised by replayed UI events (tool- or app-side).",
            ("mode", "source"),
        )
        exceptions.labels(mode=result.mode, source="tool").inc(result.tool_exceptions)
        exceptions.labels(mode=result.mode, source="app").inc(result.app_exceptions)


def _is_security(throwable) -> bool:
    return "SecurityException" in type(throwable).JAVA_NAME


def _count_app_exceptions(logcat, from_index: int) -> int:
    """Count app-side exception log entries (handled + fatal) since a mark.

    SecurityExceptions are excluded, consistent with the paper's exception
    accounting ("some intents are reserved for privileged OS processes …
    this is the specified and secure behavior").
    """
    count = 0
    records = list(logcat.records())[from_index:]
    for record in records:
        message = record.message
        if "SecurityException" in message:
            continue
        if "Exception" in message and "Caused by" not in message and "\tat " not in message:
            if message.startswith(("FATAL EXCEPTION", "Process:")):
                continue
            count += 1
    return count


def render_table5(results: Dict[str, UiInjectionResult]) -> str:
    """Render the Table V layout from a QGJ-UI run."""
    lines = [
        f"{'Experiment':<12} {'#Injected Events':>17} {'Exceptions Raised':>20} {'Crashes':>14}"
    ]
    for mode in (MutationMode.SEMI_VALID, MutationMode.RANDOM):
        if mode not in results:
            continue
        r = results[mode]
        lines.append(
            f"{r.mode:<12} {r.injected_events:>17} "
            f"{r.exceptions_raised:>12} ({r.exception_rate():.1%}) "
            f"{r.crashes:>7} ({r.crash_rate():.2%})"
        )
    return "\n".join(lines)
