"""The four Fuzz Intent Campaigns (Table I).

QGJ-Master is a *generational* fuzzer: each campaign generates intents with
a characteristic corruption, from the subtle to the egregious:

=========  =================================================================
Campaign   Characteristics of the intents generated
=========  =================================================================
A          **Semi-valid Action and Data**: a valid action and a valid data
           URI are generated separately, but the combination of them may be
           invalid.  |Action| × |TypeOf(Data)| intents per component.
B          **Blank Action or Data**: either the action OR the data URI is
           specified, but not both; all other fields are left blank.
           |Action| + |TypeOf(Data)| intents per component.
C          **Random Action or Data**: one of action/data is valid and the
           other is set randomly.  Three rounds of |Action| + |TypeOf(Data)|
           per component (the paper generated ~3x campaign B's volume).
D          **Random Extras**: for each action, a valid {Action, Data} pair
           with 1-5 Extra fields carrying random values.
=========  =================================================================

Generators are pure and deterministic given (campaign, component, seed), so
a run can be replayed injection-for-injection.  ``stride`` subsamples a
campaign for quick-scale runs while preserving its corruption profile.
"""

from __future__ import annotations

import dataclasses
import enum
import random
import string
from typing import Dict, Iterator, List, Optional, Tuple

from repro.android.actions import (
    ALL_ACTIONS,
    URI_SAMPLES,
    URI_TYPES,
    valid_pairs,
)
from repro.android.intent import ComponentName, Intent


class Campaign(enum.Enum):
    """Fuzz Intent Campaign identifiers, as in Table I."""

    A = "A"
    B = "B"
    C = "C"
    D = "D"

    @property
    def title(self) -> str:
        return _TITLES[self]

    def __str__(self) -> str:
        return self.value


_TITLES: Dict[Campaign, str] = {
    Campaign.A: "Semi-valid Action and Data",
    Campaign.B: "Blank Action or Data",
    Campaign.C: "Random Action or Data",
    Campaign.D: "Random Extras",
}

#: Rounds of the C generator (the paper's campaign C volume is ~3x B's).
CAMPAIGN_C_ROUNDS = 3

_RANDOM_CHARS = string.ascii_letters + string.digits + "$@!%.:/#?&=_- "


@dataclasses.dataclass(frozen=True)
class FuzzIntent:
    """One generated injection payload (component set at send time)."""

    action: Optional[str]
    data: Optional[str]
    extras: Tuple[Tuple[str, object], ...] = ()

    def build(self, component: ComponentName) -> Intent:
        intent = Intent(self.action)
        if self.data is not None and self.data != "":
            intent.set_data_string(self.data)
        intent.set_component(component)
        for key, value in self.extras:
            intent.put_extra(key, value)
        return intent


def random_ascii(rng: random.Random, min_len: int = 3, max_len: int = 24) -> str:
    length = rng.randint(min_len, max_len)
    return "".join(rng.choice(_RANDOM_CHARS) for _ in range(length))


def _random_extra_value(rng: random.Random) -> object:
    kind = rng.randrange(5)
    if kind == 0:
        return random_ascii(rng)
    if kind == 1:
        return rng.randint(-(2**31), 2**31 - 1)
    if kind == 2:
        return rng.uniform(-1e6, 1e6)
    if kind == 3:
        return rng.random() < 0.5
    return None  # a null extra -- a classic NPE seed


def generate_campaign_a() -> Iterator[FuzzIntent]:
    """Valid action x valid data URI; the cross product includes invalid pairs."""
    for action in ALL_ACTIONS:
        for scheme in URI_TYPES:
            yield FuzzIntent(action=action, data=URI_SAMPLES[scheme])


def generate_campaign_b() -> Iterator[FuzzIntent]:
    """Either action or data, never both; everything else blank."""
    for action in ALL_ACTIONS:
        yield FuzzIntent(action=action, data=None)
    for scheme in URI_TYPES:
        yield FuzzIntent(action=None, data=URI_SAMPLES[scheme])


def generate_campaign_c(rng: random.Random, rounds: int = CAMPAIGN_C_ROUNDS) -> Iterator[FuzzIntent]:
    """One side valid, the other random garbage."""
    for _ in range(rounds):
        for action in ALL_ACTIONS:
            yield FuzzIntent(action=action, data=random_ascii(rng))
        for scheme in URI_TYPES:
            yield FuzzIntent(action=random_ascii(rng), data=URI_SAMPLES[scheme])


def generate_campaign_d(rng: random.Random) -> Iterator[FuzzIntent]:
    """Valid {Action, Data} pairs decorated with 1-5 random extras."""
    for action, data in valid_pairs():
        extras = tuple(
            (f"extra_{i}", _random_extra_value(rng))
            for i in range(rng.randint(1, 5))
        )
        yield FuzzIntent(action=action, data=data or None, extras=extras)


def generate(
    campaign: Campaign,
    seed: int = 0,
    component: Optional[ComponentName] = None,
    stride: int = 1,
) -> Iterator[FuzzIntent]:
    """Generate *campaign*'s intents for one component.

    ``stride`` keeps every ``stride``-th intent (quick-scale subsampling);
    the RNG is keyed on (campaign, component, seed) so different components
    receive different random payloads, reproducibly.
    """
    if stride < 1:
        raise ValueError(f"stride must be >= 1, got {stride}")
    key = f"{campaign.value}|{component.flatten_to_string() if component else ''}|{seed}"
    rng = random.Random(key)
    if campaign == Campaign.A:
        source: Iterator[FuzzIntent] = generate_campaign_a()
    elif campaign == Campaign.B:
        source = generate_campaign_b()
    elif campaign == Campaign.C:
        source = generate_campaign_c(rng)
    elif campaign == Campaign.D:
        source = generate_campaign_d(rng)
    else:  # pragma: no cover - exhaustive enum
        raise ValueError(f"unknown campaign: {campaign}")
    for index, fuzz_intent in enumerate(source):
        if index % stride == 0:
            yield fuzz_intent


def campaign_size(campaign: Campaign, stride: int = 1) -> int:
    """Exact per-component intent count for *campaign* at *stride*."""
    if campaign == Campaign.A:
        full = len(ALL_ACTIONS) * len(URI_TYPES)
    elif campaign == Campaign.B:
        full = len(ALL_ACTIONS) + len(URI_TYPES)
    elif campaign == Campaign.C:
        full = CAMPAIGN_C_ROUNDS * (len(ALL_ACTIONS) + len(URI_TYPES))
    elif campaign == Campaign.D:
        full = len(valid_pairs())
    else:  # pragma: no cover - exhaustive enum
        raise ValueError(f"unknown campaign: {campaign}")
    return (full + stride - 1) // stride


def table1_rows(stride: int = 1) -> List[Dict[str, object]]:
    """The Table I summary: strategy, formula, and per-component volume."""
    formulas = {
        Campaign.A: "|Action| x |TypeOf(Data)|",
        Campaign.B: "|Action| + |TypeOf(Data)|",
        Campaign.C: f"{CAMPAIGN_C_ROUNDS} x (|Action| + |TypeOf(Data)|)",
        Campaign.D: "one valid pair per {Action, Data}",
    }
    examples = {
        Campaign.A: "{act=ACTION_DIAL, data=http://foo.com/, cmp=some.component.name}",
        Campaign.B: "{data=tel:123, cmp=some.component.name}",
        Campaign.C: "{act=ACTION_DIAL, cmp=some.component.name}",
        Campaign.D: "{act=ACTION_DIAL, data=tel:123, cmp=some.component.name (has extras)}",
    }
    return [
        {
            "campaign": campaign,
            "title": campaign.title,
            "formula": formulas[campaign],
            "intents_per_component": campaign_size(campaign, stride),
            "example": examples[campaign],
        }
        for campaign in Campaign
    ]
