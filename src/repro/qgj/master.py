"""QGJ-Master: the QGJ Mobile and QGJ Wear apps and their protocol.

The paper's Fig. 1a operational workflow:

    ① QGJ Mobile retrieves the list of components (Activities, Services)
      from the Android wearable.
    ② The phone sends the chosen target and fuzzing campaign to the watch
      over the Android Wear MessageAPI.
    ③ QGJ Wear forwards the input to the Fuzzer library.
    ④ The fuzzer injects intents into the chosen target app component.

After a run, QGJ Wear ships the result summary back over the DataAPI and
QGJ Mobile renders it.  QGJ needs no root privilege: both apps are ordinary
packages and injection happens through public framework entry points.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Dict, List, Optional

from repro.android.component import ComponentKind
from repro.android.package_manager import AppCategory, AppOrigin, PackageInfo
from repro.qgj.campaigns import Campaign
from repro.qgj.fuzzer import (
    QGJ_MOBILE_PACKAGE,
    QGJ_WEAR_PACKAGE,
    FuzzConfig,
    FuzzerLibrary,
    QUICK_CONFIG,
)
from repro.qgj.results import FuzzSummary
from repro.wear.device import PhoneDevice, WearDevice
from repro.wear.node import DataClient, MessageClient, MessageEvent, SUCCESS

# MessageAPI paths.
PATH_LIST_COMPONENTS = "/qgj/list-components"
PATH_COMPONENTS_REPLY = "/qgj/components"
PATH_START_FUZZ = "/qgj/start"
PATH_SUMMARY = "/qgj/summary"


def _qgj_package(package: str, label: str) -> PackageInfo:
    return PackageInfo(
        package=package,
        label=label,
        category=AppCategory.OTHER,
        origin=AppOrigin.THIRD_PARTY,
        components=[],
    )


@dataclasses.dataclass
class ComponentListing:
    """One row of the component inventory QGJ Mobile shows the user."""

    component: str
    kind: str
    package: str
    exported: bool


class QGJWear:
    """The wear-side QGJ app: listens for commands, runs the fuzzer."""

    def __init__(self, watch: WearDevice) -> None:
        self.watch = watch
        self.fuzzer = FuzzerLibrary(watch, sender_package=QGJ_WEAR_PACKAGE)
        self._message_client = MessageClient(watch.node)
        self._data_client = DataClient(watch.node)
        self.last_summary: Optional[FuzzSummary] = None
        if not watch.packages.is_installed(QGJ_WEAR_PACKAGE):
            watch.install(_qgj_package(QGJ_WEAR_PACKAGE, "QGJ Wear"))
        watch.node.add_message_listener(PATH_LIST_COMPONENTS, self._on_list_request)
        watch.node.add_message_listener(PATH_START_FUZZ, self._on_start_request)

    # -- protocol handlers ---------------------------------------------------------
    def _on_list_request(self, event: MessageEvent) -> None:
        listing = [
            {
                "component": info.name.flatten_to_string(),
                "kind": info.kind.value,
                "package": info.package,
                "exported": info.exported,
            }
            for info in self.watch.packages.all_components()
            if info.package not in (QGJ_WEAR_PACKAGE, QGJ_MOBILE_PACKAGE)
        ]
        payload = json.dumps(listing).encode()
        self._message_client.send_message(event.source_node, PATH_COMPONENTS_REPLY, payload)

    def _on_start_request(self, event: MessageEvent) -> None:
        request = json.loads(event.payload.decode())
        packages: List[str] = request["packages"]
        campaigns = [Campaign(c) for c in request.get("campaigns", "ABCD")]
        config = FuzzConfig(
            stride=request.get("stride", 1),
            strides={Campaign(k): v for k, v in request.get("strides", {}).items()}
            or None,
            max_intents_per_component=request.get("max_intents_per_component"),
            seed=request.get("seed", 0),
        )
        summary = self.fuzzer.fuzz_device(
            config=config, campaigns=campaigns, packages=packages
        )
        self.last_summary = summary
        self._data_client.put_data_item(PATH_SUMMARY, summary.to_wire())


class QGJMobile:
    """The phone-side QGJ app: the operator's console."""

    def __init__(self, phone: PhoneDevice, watch_node_id) -> None:
        self.phone = phone
        self.watch_node_id = watch_node_id
        self._message_client = MessageClient(phone.node)
        self._data_client = DataClient(phone.node)
        self.component_listing: List[ComponentListing] = []
        self.last_summary: Optional[Dict[str, object]] = None
        if not phone.packages.is_installed(QGJ_MOBILE_PACKAGE):
            phone.install(_qgj_package(QGJ_MOBILE_PACKAGE, "QGJ Mobile"))
        phone.node.add_message_listener(PATH_COMPONENTS_REPLY, self._on_components_reply)
        phone.node.add_data_listener(PATH_SUMMARY, self._on_summary)

    # -- step 1: component inventory -------------------------------------------------
    def refresh_components(self) -> List[ComponentListing]:
        status = self._message_client.send_message(
            self.watch_node_id, PATH_LIST_COMPONENTS, b""
        )
        if status != SUCCESS:
            raise ConnectionError(f"wearable unreachable (status {status})")
        return self.component_listing

    def _on_components_reply(self, event: MessageEvent) -> None:
        rows = json.loads(event.payload.decode())
        self.component_listing = [
            ComponentListing(
                component=row["component"],
                kind=row["kind"],
                package=row["package"],
                exported=row["exported"],
            )
            for row in rows
        ]

    def packages_on_watch(self) -> List[str]:
        return sorted({row.package for row in self.component_listing})

    # -- step 2: start a fuzzing session ---------------------------------------------
    def start_fuzz(
        self,
        packages: List[str],
        campaigns: str = "ABCD",
        config: FuzzConfig = QUICK_CONFIG,
    ) -> Dict[str, object]:
        """Ask QGJ Wear to fuzz *packages*; returns the wire summary."""
        request = {
            "packages": packages,
            "campaigns": campaigns,
            "stride": config.stride,
            "strides": {c.value: s for c, s in (config.strides or {}).items()},
            "max_intents_per_component": config.max_intents_per_component,
            "seed": config.seed,
        }
        # Drop any previous run's summary first: a run that fails to report
        # must raise below, not silently return stale results.
        self.last_summary = None
        status = self._message_client.send_message(
            self.watch_node_id, PATH_START_FUZZ, json.dumps(request).encode()
        )
        if status != SUCCESS:
            raise ConnectionError(f"wearable unreachable (status {status})")
        if self.last_summary is None:
            raise RuntimeError("no summary received from the wearable")
        return self.last_summary

    def _on_summary(self, item) -> None:
        self.last_summary = item.data

    def render_summary(self) -> str:
        if self.last_summary is None:
            return "no fuzz run yet"
        summary = self.last_summary
        lines = [
            f"QGJ run against {summary['device']}",
            f"  intents sent:        {summary['total_sent']}",
            f"  security exceptions: {summary['total_security_exceptions']}",
            f"  crashes observed:    {summary['total_crashes_seen']}",
            f"  device reboots:      {summary['total_reboots']}",
        ]
        return "\n".join(lines)


def deploy(phone: PhoneDevice, watch: WearDevice) -> tuple:
    """Install QGJ on both paired devices; returns (mobile, wear) apps."""
    wear_app = QGJWear(watch)
    mobile_app = QGJMobile(phone, watch.node.node_id)
    return mobile_app, wear_app
