"""Crash triage: bucketing, deduplication, and intent minimisation.

The paper closes with the observation that "automated robustness testing
tools (such as QGJ) can help in detecting such bugs and bridging this gap"
-- but a raw campaign produces thousands of FATAL blocks for a developer to
wade through.  This module is the missing developer-facing half of the
tool:

* **bucketing** -- crashes are deduplicated by their signature (component,
  root exception class, throwing frame), the same grouping a crash-reporting
  backend performs;
* **minimisation** -- for each bucket, a greedy delta-debugging pass strips
  the example intent down to the minimal field set that still reproduces
  the same crash signature (drop the data URI, drop extras one by one, drop
  the action, shrink the data to its scheme), yielding the one-line
  reproducer a bug report needs;
* **reporting** -- a ranked triage report, one bucket per latent defect.

Probing is done against the live device but leaves no residue: after every
probe the target package is force-stopped and the system server's aging
state restored, so triage never triggers the escalation paths the study
reserves for campaigns.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

from repro.android.component import ComponentInfo, ComponentKind
from repro.android.device import Device
from repro.android.jtypes import SecurityException, Throwable
from repro.qgj.campaigns import Campaign, FuzzIntent, generate
from repro.qgj.fuzzer import QGJ_WEAR_PACKAGE, FuzzConfig


def _shell_arg(value: str) -> str:
    """Quote *value* for a shell line, escaping control characters."""
    import shlex

    printable = value.encode("unicode_escape").decode("ascii")
    return shlex.quote(printable) if printable else "''"


@dataclasses.dataclass(frozen=True)
class CrashSignature:
    """The dedup key for one latent defect."""

    component: str
    exception: str           # root-cause Java class
    frame: str               # topmost app frame ("class.method")

    def render(self) -> str:
        return f"{self.exception.rsplit('.', 1)[-1]} at {self.frame} ({self.component})"


@dataclasses.dataclass
class CrashBucket:
    """All observed crashes sharing one signature."""

    signature: CrashSignature
    count: int = 0
    example: Optional[FuzzIntent] = None
    minimized: Optional[FuzzIntent] = None

    def reproducer(self) -> str:
        """The ``adb shell am`` line that reproduces this bucket.

        Arguments are shell-quoted and control characters escaped, so the
        line is always a single printable command (fuzzed payloads can
        contain anything).
        """
        intent = self.minimized or self.example
        if intent is None:
            return "(no example recorded)"
        package, _, cls = self.signature.component.partition("/")
        parts = ["am start" if "Activity" in cls else "am startservice"]
        if intent.action is not None:
            parts.append(f"-a {_shell_arg(intent.action)}")
        if intent.data:
            parts.append(f"-d {_shell_arg(intent.data)}")
        for key, value in intent.extras:
            parts.append(f"--es {_shell_arg(key)} {_shell_arg(str(value))}")
        parts.append(f"-n {package}/{cls}")
        return " ".join(parts)


class CrashProber:
    """Residue-free single-intent probing against a live device."""

    def __init__(self, device: Device, sender_package: str = QGJ_WEAR_PACKAGE) -> None:
        self._device = device
        self.sender_package = sender_package
        self.probes = 0

    def signature_of(
        self, info: ComponentInfo, fuzz_intent: FuzzIntent
    ) -> Optional[CrashSignature]:
        """Deliver once; return the crash signature, or ``None``.

        The target package is force-stopped afterwards and the aging state
        restored, so probing cannot contribute to escalation.
        """
        self.probes += 1
        intent = fuzz_intent.build(info.name)
        am = self._device.activity_manager
        boots_before = self._device.boot_count
        try:
            if info.kind == ComponentKind.ACTIVITY:
                result = am.start_activity(self.sender_package, intent)
            else:
                _, result = am.start_service_with_result(self.sender_package, intent)
        except SecurityException:
            return None
        except Throwable:
            return None
        finally:
            am.force_stop(info.package)
            self._device.system_server.aging.reset()
        if self._device.boot_count != boots_before:
            # A probe that reboots the device has no stable crash signature;
            # escalation analysis is the campaigns' job, not triage's.
            return None
        if not result.crashed or result.throwable is None:
            return None
        root = result.throwable.root_cause()
        frame = root.frames[0] if root.frames else None
        frame_text = f"{frame.class_name}.{frame.method}" if frame else "(unknown)"
        return CrashSignature(
            component=info.name.flatten_to_string(),
            exception=type(root).JAVA_NAME,
            frame=frame_text,
        )


def _without_extra(fuzz_intent: FuzzIntent, index: int) -> FuzzIntent:
    extras = tuple(e for i, e in enumerate(fuzz_intent.extras) if i != index)
    return FuzzIntent(action=fuzz_intent.action, data=fuzz_intent.data, extras=extras)


def minimize_intent(
    prober: CrashProber,
    info: ComponentInfo,
    fuzz_intent: FuzzIntent,
    signature: CrashSignature,
) -> FuzzIntent:
    """Greedy field-wise minimisation preserving the crash signature.

    Tries, in order: dropping every extra, dropping the data URI, shrinking
    the data to ``scheme:`` only, dropping the action.  Each simplification
    is kept only if the probe still reproduces *signature*.
    """
    current = fuzz_intent

    # Drop extras one at a time (right to left keeps indices stable).
    index = len(current.extras) - 1
    while index >= 0:
        candidate = _without_extra(current, index)
        if prober.signature_of(info, candidate) == signature:
            current = candidate
        index -= 1

    if current.data:
        candidate = FuzzIntent(action=current.action, data=None, extras=current.extras)
        if prober.signature_of(info, candidate) == signature:
            current = candidate
        else:
            scheme = current.data.split(":", 1)[0]
            shrunk = FuzzIntent(
                action=current.action, data=f"{scheme}:", extras=current.extras
            )
            if prober.signature_of(info, shrunk) == signature:
                current = shrunk

    if current.action is not None:
        candidate = FuzzIntent(action=None, data=current.data, extras=current.extras)
        if prober.signature_of(info, candidate) == signature:
            current = candidate

    return current


@dataclasses.dataclass
class TriageReport:
    """Ranked crash buckets for one app."""

    package: str
    buckets: List[CrashBucket]
    intents_probed: int

    def render(self) -> str:
        lines = [
            f"CRASH TRIAGE: {self.package}",
            "-" * 72,
            f"{len(self.buckets)} distinct defects "
            f"({sum(b.count for b in self.buckets)} raw crashes, "
            f"{self.intents_probed} probe injections)",
        ]
        for i, bucket in enumerate(
            sorted(self.buckets, key=lambda b: -b.count), start=1
        ):
            lines.append(f"#{i} x{bucket.count}  {bucket.signature.render()}")
            lines.append(f"    repro: {bucket.reproducer()}")
        return "\n".join(lines)


def triage_app(
    device: Device,
    package_name: str,
    campaigns: Sequence[Campaign] = tuple(Campaign),
    config: Optional[FuzzConfig] = None,
    minimize: bool = True,
    sender_package: str = QGJ_WEAR_PACKAGE,
) -> TriageReport:
    """Fuzz one app and return its deduplicated, minimised crash buckets.

    Unlike :meth:`FuzzerLibrary.fuzz_app`, this probes intent-by-intent so
    every crash can be tied to the exact input that produced it.
    """
    package = device.packages.get_package(package_name)
    if package is None:
        raise ValueError(f"package not installed: {package_name}")
    if config is None:
        config = FuzzConfig(
            strides={Campaign.A: 12, Campaign.B: 1, Campaign.C: 2, Campaign.D: 1}
        )
    prober = CrashProber(device, sender_package)
    buckets: Dict[CrashSignature, CrashBucket] = {}
    for info in package.components:
        if info.kind not in (ComponentKind.ACTIVITY, ComponentKind.SERVICE):
            continue
        for campaign in campaigns:
            for fuzz_intent in generate(
                campaign,
                seed=config.seed,
                component=info.name,
                stride=config.stride_for(campaign),
            ):
                signature = prober.signature_of(info, fuzz_intent)
                if signature is None:
                    continue
                bucket = buckets.setdefault(signature, CrashBucket(signature=signature))
                bucket.count += 1
                if bucket.example is None:
                    bucket.example = fuzz_intent
    if minimize:
        for bucket in buckets.values():
            assert bucket.example is not None
            bucket.minimized = minimize_intent(
                prober, _info_for(package, bucket.signature), bucket.example, bucket.signature
            )
    return TriageReport(
        package=package_name,
        buckets=list(buckets.values()),
        intents_probed=prober.probes,
    )


def _info_for(package, signature: CrashSignature) -> ComponentInfo:
    for info in package.components:
        if info.name.flatten_to_string() == signature.component:
            return info
    raise KeyError(signature.component)
