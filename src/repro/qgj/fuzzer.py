"""The QGJ Fuzzer library.

"This is the Java library, which contains the main functions needed to
inject intents on the target device.  Since intents have to be sent from the
target device, this library is shared by QGJ Mobile and QGJ wearable."

The library runs a :class:`~repro.qgj.campaigns.Campaign` against one
component, one app, or the whole device, with the paper's pacing: 100 ms
between successive intents and an extra 250 ms after every 100 intents
("empirically determined … to ensure the device is not overloaded").  QGJ is
an *unprivileged* app -- it sends through the public startActivity /
startService entry points and observes only what those surface
(``SecurityException``, ``ActivityNotFoundException``) plus the dispatch
telemetry; behavioural classification happens later from logcat.

A device reboot mid-campaign aborts the rest of the *current app* (the
session to the device is lost; the operator resumes with the next app) --
which is also why each observed reboot appears exactly once per run.
"""

from __future__ import annotations

import contextlib
import dataclasses
import time
from typing import Callable, Generator, Iterable, List, Optional, Sequence, Tuple

from repro.android.activity_manager import DispatchResult
from repro.android.component import ComponentInfo, ComponentKind
from repro.android.device import Device
from repro.android.jtypes import ActivityNotFoundException, SecurityException
from repro.faults.errors import TRANSIENT_ERRORS, CompatMismatchError
from repro.faults.journal import KillSwitch
from repro.faults.quarantine import CircuitBreaker
from repro.faults.retry import RetryPolicy
from repro.qgj.campaigns import Campaign, FuzzIntent, generate
from repro.qgj.results import AppRunResult, ComponentRunResult, FuzzSummary
from repro.telemetry.metrics import INTENTS_INJECTED
from repro.telemetry.record import CounterSite

#: Package identity under which QGJ injects (unprivileged, as in the paper).
QGJ_WEAR_PACKAGE = "com.qgj.wear"
QGJ_MOBILE_PACKAGE = "com.qgj.mobile"

#: Pacing, from Section III-D.
INTENT_DELAY_MS = 100.0
BATCH_DELAY_MS = 250.0
BATCH_SIZE = 100


@dataclasses.dataclass(frozen=True)
class FuzzConfig:
    """Tunable knobs for one fuzzing run.

    ``stride`` subsamples every campaign uniformly; ``strides`` overrides it
    per campaign.  The quick configuration's strides are chosen so that the
    *structure* of each campaign survives subsampling: campaign A's stride
    of 12 keeps exactly one data URI per action (every action still reaches
    every component), and campaign C's stride of 2 keeps at least one of
    each action's three randomised rounds.
    """

    #: Default subsampling stride over each campaign's generator (1 = paper scale).
    stride: int = 1
    #: Per-campaign stride overrides.
    strides: Optional[dict] = None
    #: Hard cap per component (None = the campaign's natural size).
    max_intents_per_component: Optional[int] = None
    seed: int = 0
    intent_delay_ms: float = INTENT_DELAY_MS
    batch_delay_ms: float = BATCH_DELAY_MS
    batch_size: int = BATCH_SIZE

    def __post_init__(self) -> None:
        if self.stride < 1:
            raise ValueError(f"stride must be >= 1, got {self.stride}")
        if self.strides is not None:
            for campaign, stride in self.strides.items():
                if stride < 1:
                    raise ValueError(f"stride for {campaign} must be >= 1, got {stride}")
        if self.max_intents_per_component is not None and self.max_intents_per_component < 1:
            raise ValueError("max_intents_per_component must be >= 1")

    def stride_for(self, campaign: Campaign) -> int:
        if self.strides is not None and campaign in self.strides:
            return self.strides[campaign]
        return self.stride


#: The fuzzer's one hot-path metric, declared once next to the loop that
#: records it.  Binding (per component × outcome) is the cold half; the per
#: injection cost is one batched ``handle.inc()``.
_INTENTS_SITE = CounterSite(
    INTENTS_INJECTED,
    "Intents injected by the QGJ fuzzer, by final outcome.",
    ("campaign", "package", "outcome"),
)

#: Attribute keys of the inline leaf-ring entry (see
#: ``_fuzz_component_instrumented``): one shared tuple instead of a fresh
#: two-key dict per injection.  Order matters -- materialized spans must
#: carry ``{"seq": ..., "outcome": ...}`` exactly as ``record_leaf`` would.
_LEAF_KEYS = ("seq", "outcome")


def _profiled_generation(iterable, profiler):
    """Charge the time spent *pulling* from a generator to ``generate``.

    Campaign intents come from a lazy generator, so their construction cost
    hides inside the for-loop header; this wrapper brackets each ``next()``
    so the self-profiler attributes it correctly.
    """
    it = iter(iterable)
    enter = profiler.enter
    leave = profiler.exit
    while True:
        enter("generate")
        try:
            item = next(it)
        except StopIteration:
            return
        finally:
            leave()
        yield item


#: Quick scale: every component still sees every action and every corruption
#: class, volumes shrink ~3.5x (A shrinks 12x; B and D run in full).
QUICK_CONFIG = FuzzConfig(
    strides={Campaign.A: 12, Campaign.B: 1, Campaign.C: 2, Campaign.D: 1}
)

#: Paper-scale: the full Table I volumes (~2M intents over the corpus).
PAPER_CONFIG = FuzzConfig(stride=1)


class FuzzerLibrary:
    """Injects campaign intents into components of one device.

    When a fault plan is armed (:mod:`repro.faults`), dispatch is hardened:
    transient transport errors are retried with seeded backoff, a package
    whose transport keeps failing is quarantined by the circuit breaker, and
    an optional :class:`~repro.faults.journal.KillSwitch` simulates the host
    dying after a fixed number of injections.  With no plan armed none of
    this machinery is on the dispatch path.
    """

    def __init__(
        self,
        device: Device,
        sender_package: str = QGJ_WEAR_PACKAGE,
        retry_policy: Optional[RetryPolicy] = None,
        quarantine: Optional[CircuitBreaker] = None,
        kill_switch: Optional[KillSwitch] = None,
    ) -> None:
        self._device = device
        self.sender_package = sender_package
        self.retry_policy = retry_policy if retry_policy is not None else RetryPolicy()
        self.quarantine = quarantine if quarantine is not None else CircuitBreaker()
        self.kill_switch = kill_switch

    # -- single component ---------------------------------------------------------
    def fuzz_component(
        self,
        info: ComponentInfo,
        campaign: Campaign,
        config: FuzzConfig = QUICK_CONFIG,
    ) -> ComponentRunResult:
        """Run *campaign* against one component."""
        result = ComponentRunResult(
            component=info.name.flatten_to_string(),
            kind=info.kind,
            campaign=campaign,
        )
        t = self._device.runtime.telemetry
        if not t.enabled:
            self._fuzz_component_plain(info, campaign, config, result)
        elif t.profiler.enabled:
            self._fuzz_component_profiled(info, campaign, config, result, t)
        else:
            self._fuzz_component_instrumented(info, campaign, config, result, t)
        return result

    def fuzz_intent_stream(
        self,
        info: ComponentInfo,
        campaign: Campaign,
        intents: Iterable[FuzzIntent],
        config: FuzzConfig = QUICK_CONFIG,
        result: Optional[ComponentRunResult] = None,
        observer: Optional[
            Callable[
                [ComponentInfo, FuzzIntent, str, Optional[DispatchResult]], None
            ]
        ] = None,
    ) -> ComponentRunResult:
        """Inject an explicit intent stream instead of a campaign grammar.

        The guided fuzzer's entry point: the caller owns intent selection
        (corpus mutation, spliced pools, replay) while this method keeps
        the injection semantics -- pacing, kill switch, reboot abort,
        quarantine -- identical to the campaign loops by sharing
        :meth:`_injection_epilogue`.  *observer*, when given, sees every
        injection as ``(info, intent, outcome, dispatch)`` so callers can
        fingerprint behaviours without re-entering the dispatch path.
        Passing *result* lets one accounting object span several streams.
        """
        if result is None:
            result = ComponentRunResult(
                component=info.name.flatten_to_string(),
                kind=info.kind,
                campaign=campaign,
            )
        clock = self._device.clock
        boots_before = self._device.boot_count
        max_intents = config.max_intents_per_component
        epilogue = self._injection_epilogue
        for fuzz_intent in intents:
            if max_intents is not None and result.sent >= max_intents:
                break
            outcome, dispatch = self._inject(info, fuzz_intent, result)
            if observer is not None:
                observer(info, fuzz_intent, outcome, dispatch)
            if not epilogue(result, config, clock, boots_before):
                break
        return result

    def _fuzz_component_plain(
        self,
        info: ComponentInfo,
        campaign: Campaign,
        config: FuzzConfig,
        result: ComponentRunResult,
    ) -> None:
        """The uninstrumented loop: telemetry off pays nothing here.

        Implemented as a trampoline over :meth:`fuzz_component_coop`: each
        yielded deadline is advanced to immediately, which is exactly what
        ``clock.sleep`` would have done inline.  Sharing the generator with
        the fleet kernel is what guarantees a multiplexed pair replays the
        identical timeline a blocking run produces.
        """
        advance = self._device.clock.advance_to
        for deadline_ms in self.fuzz_component_coop(info, campaign, config, result):
            advance(deadline_ms)

    def fuzz_component_coop(
        self,
        info: ComponentInfo,
        campaign: Campaign,
        config: FuzzConfig,
        result: ComponentRunResult,
    ) -> Generator[float, None, None]:
        """The cooperative component loop: yields instead of sleeping.

        Each ``yield`` hands the caller the absolute virtual deadline the
        paper's pacing calls for (100 ms between intents, +250 ms per
        batch); the caller must advance this device's clock to the deadline
        before resuming -- the blocking trampoline does it inline, the
        :class:`~repro.android.clock.FleetScheduler` does it when this pair
        is next up.  The body mirrors :meth:`_injection_epilogue` step for
        step (kill tick, pacing, reboot abort, quarantine abort); the
        stream-vs-coop equivalence test in ``tests/qgj`` keeps the two from
        drifting apart.
        """
        clock = self._device.clock
        device = self._device
        boots_before = device.boot_count
        max_intents = config.max_intents_per_component
        kill_switch = self.kill_switch
        for fuzz_intent in generate(
            campaign,
            seed=config.seed,
            component=info.name,
            stride=config.stride_for(campaign),
        ):
            if max_intents is not None and result.sent >= max_intents:
                break
            self._inject(info, fuzz_intent, result)
            if kill_switch is not None:
                kill_switch.tick()
            yield clock.now_ms() + config.intent_delay_ms
            if result.sent % config.batch_size == 0:
                yield clock.now_ms() + config.batch_delay_ms
            if device.boot_count != boots_before:
                result.rebooted = True
                result.aborted = True
                return
            if result.quarantined:
                return

    def _fuzz_component_instrumented(
        self,
        info: ComponentInfo,
        campaign: Campaign,
        config: FuzzConfig,
        result: ComponentRunResult,
        t,
    ) -> None:
        """The instrumented loop: handles bound up front, recording inlined.

        Everything resolvable is hoisted out of the loop -- the metric
        family (registered up front so the series' TYPE/HELP lines appear
        even for a component that sends nothing), the per-outcome bound
        handles, the tracer's leaf-ring state -- and the recording itself
        is written *inline*: at ~100k injections/s a single Python method
        call costs more than the record it would make.  This loop is the
        one blessed inline client of the tracer's leaf ring; the compact
        tuple it appends must materialize exactly what
        :meth:`Tracer.record_leaf` would have recorded, and
        ``tests/telemetry/test_trace.py`` asserts the two paths produce
        identical spans so they cannot drift apart.  When sampling is on,
        the loop simply calls :meth:`Tracer.record_leaf` (the sampled-out
        common case returns before any of the inlined work would happen).

        Heartbeat ticks and ring-eviction drops are not counted per
        injection at all: both are settled from the ``sent`` delta -- the
        heartbeat at each pacing batch boundary (and loop exit), so
        progress snapshots trail by at most one batch, and the tracer's
        dropped count once at loop exit (every inline append past capacity
        evicted exactly one record).
        """
        device = self._device
        clock = device.clock
        boots_before = device.boot_count
        # An unbounded run compares against +inf so the loop needs no
        # None-check per iteration.
        max_intents = config.max_intents_per_component
        if max_intents is None:
            max_intents = float("inf")
        tracer = t.tracer
        metrics = t.metrics
        perf_counter = time.perf_counter
        _INTENTS_SITE.family(metrics)
        handles: dict = {}
        campaign_value = campaign.value
        package = info.package
        heartbeat = t.progress
        heartbeat.count_injections(0)  # pin the rate baseline to campaign start
        sampling = tracer.sample_every != 1
        record_leaf = tracer.record_leaf
        finished = tracer._finished
        ring_capacity = finished.maxlen
        finished_append = finished.append
        next_id = tracer._ids.__next__
        inject = self._inject
        epilogue = self._injection_epilogue
        intent_stream = generate(
            campaign,
            seed=config.seed,
            component=info.name,
            stride=config.stride_for(campaign),
        )
        with tracer.span(
            "component",
            clock=clock,
            component=result.component,
            kind=info.kind.value,
            campaign=campaign_value,
        ):
            # The open-span stack cannot change inside the loop (leaf spans
            # never push), so the injection spans' parent is a constant.
            stack = tracer._stack
            parent_id = stack[-1].span_id if stack else None
            # result.sent is mirrored in a local so the loop reads it once
            # per iteration instead of three attribute loads.  Its deltas
            # also stand in for per-iteration tick counters: _inject
            # increments it exactly once per call.
            sent = result.sent
            sent_start = sent
            hb_mark = sent
            ring_len_start = len(finished)

            def on_batch() -> None:
                # Settle the heartbeat from the sent delta at each pacing
                # batch boundary (the epilogue calls this at most once per
                # batch, so it stays off the per-injection path).
                nonlocal hb_mark
                heartbeat.count_injections(result.sent - hb_mark)
                hb_mark = result.sent

            try:
                for fuzz_intent in intent_stream:
                    if sent >= max_intents:
                        break
                    start_wall = perf_counter()
                    start_virtual = clock._now_ms
                    outcome, _ = inject(info, fuzz_intent, result)
                    end_wall = perf_counter()
                    sent = result.sent
                    if sampling:
                        record_leaf(
                            "injection",
                            {"seq": sent, "outcome": outcome},
                            start_wall,
                            end_wall,
                            start_virtual,
                            clock._now_ms,
                        )
                    else:
                        # Inline Tracer.record_leaf (see docstring): one
                        # flat ring entry, attribute values trailing the
                        # shared key tuple.  Eviction is the deque's own
                        # maxlen drop; the dropped *count* is settled once
                        # in the finally below, not per record.
                        finished_append(
                            (
                                next_id(),
                                parent_id,
                                "injection",
                                _LEAF_KEYS,
                                start_wall,
                                end_wall,
                                start_virtual,
                                clock._now_ms,
                                sent,
                                outcome,
                            )
                        )
                    # Direct slot store: BoundCounter.inc(1) without the
                    # call.  A handful of outcomes over thousands of
                    # injections makes try/except cheaper than .get().
                    try:
                        handles[outcome].pending += 1
                    except KeyError:
                        handles[outcome] = handle = _INTENTS_SITE.bind(
                            metrics, (campaign_value, package, outcome)
                        )
                        handle.pending += 1
                    if not epilogue(result, config, clock, boots_before, on_batch):
                        break
            finally:
                if sent != hb_mark:
                    heartbeat.count_injections(sent - hb_mark)
                if not sampling:
                    # One inline append per injection: whatever the loop
                    # pushed past capacity evicted that many records.
                    overflow = ring_len_start + (sent - sent_start) - ring_capacity
                    if overflow > 0:
                        tracer._dropped += overflow

    def _fuzz_component_profiled(
        self,
        info: ComponentInfo,
        campaign: Campaign,
        config: FuzzConfig,
        result: ComponentRunResult,
        t,
    ) -> None:
        """The self-profiled loop: like the instrumented one, plus phase
        brackets around intent generation and dispatch.

        Kept as its own variant so the common instrumented path carries no
        profiler conditionals; profiling is explicitly a diagnostic mode
        that trades some throughput for attribution.
        """
        clock = self._device.clock
        boots_before = self._device.boot_count
        max_intents = config.max_intents_per_component
        tracer = t.tracer
        metrics = t.metrics
        profiler = t.profiler
        record_leaf = tracer.record_leaf
        perf_counter = time.perf_counter
        now_ms = clock.now_ms
        count_injection = t.progress.count_injection
        _INTENTS_SITE.family(metrics)
        handles: dict = {}
        campaign_value = campaign.value
        package = info.package
        intent_stream = _profiled_generation(
            generate(
                campaign,
                seed=config.seed,
                component=info.name,
                stride=config.stride_for(campaign),
            ),
            profiler,
        )
        with tracer.span(
            "component",
            clock=clock,
            component=result.component,
            kind=info.kind.value,
            campaign=campaign_value,
        ):
            for fuzz_intent in intent_stream:
                if max_intents is not None and result.sent >= max_intents:
                    break
                start_wall = perf_counter()
                start_virtual = now_ms()
                profiler.enter("dispatch")
                try:
                    outcome, _ = self._inject(info, fuzz_intent, result)
                finally:
                    profiler.exit()
                record_leaf(
                    "injection",
                    {"seq": result.sent, "outcome": outcome},
                    start_wall,
                    perf_counter(),
                    start_virtual,
                    now_ms(),
                )
                handle = handles.get(outcome)
                if handle is None:
                    handles[outcome] = handle = _INTENTS_SITE.bind(
                        metrics, (campaign_value, package, outcome)
                    )
                handle.pending += 1
                count_injection()
                if not self._injection_epilogue(result, config, clock, boots_before):
                    break

    def _injection_epilogue(
        self,
        result: ComponentRunResult,
        config: FuzzConfig,
        clock,
        boots_before: int,
        on_batch: Optional[Callable[[], None]] = None,
    ) -> bool:
        """The per-injection tail every loop variant shares.

        Kill-switch tick, the paper's pacing (intent delay plus the extra
        batch delay every ``batch_size`` injections), reboot detection and
        quarantine abort -- factored here so the plain, instrumented, and
        profiled loop bodies (and the guided engine's stream loop) cannot
        drift apart.  *on_batch* fires at most once per pacing batch; the
        instrumented loop uses it to settle its heartbeat delta.  Returns
        ``False`` when the component loop must stop.
        """
        if self.kill_switch is not None:
            self.kill_switch.tick()
        clock.sleep(config.intent_delay_ms)
        if result.sent % config.batch_size == 0:
            clock.sleep(config.batch_delay_ms)
            if on_batch is not None:
                on_batch()
        if self._device.boot_count != boots_before:
            result.rebooted = True
            result.aborted = True
            return False
        return not result.quarantined

    def _inject(
        self, info: ComponentInfo, fuzz_intent: FuzzIntent, result: ComponentRunResult
    ) -> Tuple[str, Optional[DispatchResult]]:
        """Send one intent; returns the telemetry outcome label and the
        dispatch result (``None`` for resolution failures and transport
        losses) -- the guided engine fingerprints from the latter."""
        intent = fuzz_intent.build(info.name)
        am = self._device.activity_manager
        result.sent += 1

        def send():
            if info.kind == ComponentKind.ACTIVITY:
                return am.start_activity(self.sender_package, intent)
            name, dispatch = am.start_service_with_result(self.sender_package, intent)
            return None if name is None else dispatch

        runtime = self._device.runtime
        plane = runtime.faults
        outcome = None
        dispatch = None
        try:
            if plane.armed:

                def count_retry(attempt: int, delay: float, exc: BaseException) -> None:
                    result.retries += 1

                try:
                    dispatch = self.retry_policy.run(
                        send,
                        self._device.clock,
                        key=(result.component, result.campaign.value, result.sent),
                        on_retry=count_retry,
                        telemetry_handle=runtime.telemetry,
                    )
                except CompatMismatchError as exc:
                    # Version skew is permanent -- the retry policy never
                    # sees it -- but it is still infrastructure, not app
                    # behaviour: its own counter, its own outcome label,
                    # and quarantine pressure so a persistently mismatched
                    # pair stops burning campaign time.
                    result.compat_mismatches += 1
                    self.quarantine.record_failure(
                        info.package,
                        type(exc).__name__,
                        telemetry_handle=runtime.telemetry,
                    )
                    if self.quarantine.is_quarantined(info.package):
                        result.quarantined = True
                        result.aborted = True
                    return "compat_mismatch", None
                except TRANSIENT_ERRORS as exc:
                    # Retries exhausted: an infrastructure loss, not an app
                    # behaviour -- kept out of the classification buckets.
                    result.transport_failures += 1
                    self.quarantine.record_failure(
                        info.package,
                        type(exc).__name__,
                        telemetry_handle=runtime.telemetry,
                    )
                    if self.quarantine.is_quarantined(info.package):
                        result.quarantined = True
                        result.aborted = True
                    return "transport_failure", None
            else:
                dispatch = send()
        except SecurityException:
            result.security_exceptions += 1
            outcome = "security_exception"
        except ActivityNotFoundException:
            result.not_found += 1
            outcome = "not_found"
        if outcome is None:
            if dispatch is None:
                result.not_found += 1
                outcome = "not_found"
            else:
                if dispatch.delivered:
                    result.delivered += 1
                if dispatch.crashed:
                    result.crashes_seen += 1
                if dispatch.anr:
                    result.anrs_seen += 1
                if dispatch.crashed:
                    outcome = "crash"
                elif dispatch.anr:
                    outcome = "anr"
                else:
                    outcome = "delivered" if dispatch.delivered else "dropped"
        if plane.armed:
            # The transaction completed (whatever the app did with it), so
            # the package's consecutive-transport-failure streak resets.
            self.quarantine.record_success(info.package)
        return outcome, dispatch

    # -- whole app ------------------------------------------------------------------
    def fuzz_app(
        self,
        package_name: str,
        campaign: Campaign,
        config: FuzzConfig = QUICK_CONFIG,
        kinds: Sequence[ComponentKind] = (ComponentKind.ACTIVITY, ComponentKind.SERVICE),
    ) -> AppRunResult:
        """Run *campaign* against every targetable component of one app.

        Aborts the remaining components if the device reboots mid-run.
        """
        package = self._device.packages.get_package(package_name)
        if package is None:
            raise ValueError(f"package not installed: {package_name}")
        if self.quarantine.is_quarantined(package_name):
            # The breaker already tripped for this package; don't burn
            # campaign time on a broken transport.
            return AppRunResult(package=package_name, campaign=campaign, quarantined=True)
        app_result = AppRunResult(package=package_name, campaign=campaign)
        wanted = set(kinds)
        t = self._device.runtime.telemetry
        with contextlib.ExitStack() as stack:
            if t.enabled:
                clock = self._device.clock
                stack.enter_context(
                    t.tracer.span("campaign", clock=clock, campaign=campaign.value)
                )
                stack.enter_context(
                    t.tracer.span(
                        "package",
                        clock=clock,
                        package=package_name,
                        campaign=campaign.value,
                    )
                )
            for info in package.components:
                if info.kind not in wanted:
                    continue
                component_result = self.fuzz_component(info, campaign, config)
                app_result.components.append(component_result)
                if component_result.rebooted:
                    app_result.aborted_by_reboot = True
                    break
                if component_result.quarantined:
                    app_result.quarantined = True
                    break
        return app_result

    def fuzz_app_coop(
        self,
        package_name: str,
        campaign: Campaign,
        config: FuzzConfig = QUICK_CONFIG,
        kinds: Sequence[ComponentKind] = (ComponentKind.ACTIVITY, ComponentKind.SERVICE),
    ) -> Generator[float, None, AppRunResult]:
        """Cooperative :meth:`fuzz_app`: yields pacing deadlines, returns
        the :class:`AppRunResult` via ``StopIteration``.

        The fleet kernel's per-pair entry point.  Matches the telemetry-off
        :meth:`fuzz_app` path exactly (telemetry spans are the blocking
        paths' concern; fleet pairs account at the lane layer), including
        the reboot/quarantine abort order.
        """
        package = self._device.packages.get_package(package_name)
        if package is None:
            raise ValueError(f"package not installed: {package_name}")
        if self.quarantine.is_quarantined(package_name):
            return AppRunResult(package=package_name, campaign=campaign, quarantined=True)
        app_result = AppRunResult(package=package_name, campaign=campaign)
        wanted = set(kinds)
        for info in package.components:
            if info.kind not in wanted:
                continue
            component_result = ComponentRunResult(
                component=info.name.flatten_to_string(),
                kind=info.kind,
                campaign=campaign,
            )
            yield from self.fuzz_component_coop(info, campaign, config, component_result)
            app_result.components.append(component_result)
            if component_result.rebooted:
                app_result.aborted_by_reboot = True
                break
            if component_result.quarantined:
                app_result.quarantined = True
                break
        return app_result

    def fuzz_app_all_campaigns(
        self,
        package_name: str,
        config: FuzzConfig = QUICK_CONFIG,
        campaigns: Iterable[Campaign] = tuple(Campaign),
    ) -> List[AppRunResult]:
        """All four campaigns, one after another, as in the experiments."""
        return [self.fuzz_app(package_name, campaign, config) for campaign in campaigns]

    # -- whole device -----------------------------------------------------------------
    def fuzz_device(
        self,
        config: FuzzConfig = QUICK_CONFIG,
        campaigns: Iterable[Campaign] = tuple(Campaign),
        packages: Optional[Sequence[str]] = None,
        exclude: Sequence[str] = (QGJ_WEAR_PACKAGE, QGJ_MOBILE_PACKAGE),
    ) -> FuzzSummary:
        """Fuzz every installed app (or *packages*) with every campaign."""
        summary = FuzzSummary(device=self._device.name)
        if packages is None:
            packages = [
                p.package
                for p in self._device.packages.installed_packages()
                if p.package not in exclude
            ]
        for package_name in packages:
            for campaign in campaigns:
                summary.apps.append(self.fuzz_app(package_name, campaign, config))
        return summary
