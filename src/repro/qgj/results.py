"""Result records produced by the QGJ fuzzer library.

These capture what the *tool* can see from user level: intents it sent,
security rejections it received, resolution failures, crashes and ANRs it
noticed in flight, and reboots it survived.  The authoritative behavioural
classification (Tables III-V, Figures 2-4) is produced separately by
:mod:`repro.analysis` from the collected ``logcat`` text, matching the
paper's methodology; the counters here drive QGJ Mobile's on-device summary
and the experiment progress reporting.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

from repro.android.component import ComponentKind
from repro.qgj.campaigns import Campaign


@dataclasses.dataclass
class ComponentRunResult:
    """Aggregate of one campaign against one component."""

    component: str
    kind: ComponentKind
    campaign: Campaign
    sent: int = 0
    delivered: int = 0
    security_exceptions: int = 0
    not_found: int = 0
    crashes_seen: int = 0
    anrs_seen: int = 0
    rebooted: bool = False
    aborted: bool = False
    #: Injections lost to the environment (adb drop / binder transport)
    #: after retries were exhausted -- infrastructure noise, never folded
    #: into the behavioural classification.
    transport_failures: int = 0
    #: Transient transport errors recovered by the retry layer.
    retries: int = 0
    #: Version-gated calls rejected under a skewed phone/wear pair --
    #: permanent infrastructure faults (never retried, never folded into
    #: the behavioural classification).
    compat_mismatches: int = 0
    #: True when the circuit breaker quarantined the package mid-component.
    quarantined: bool = False

    def merge_counts(self) -> Dict[str, int]:
        return {
            "sent": self.sent,
            "delivered": self.delivered,
            "security_exceptions": self.security_exceptions,
            "not_found": self.not_found,
            "crashes_seen": self.crashes_seen,
            "anrs_seen": self.anrs_seen,
        }


@dataclasses.dataclass
class AppRunResult:
    """Aggregate of one campaign against one application."""

    package: str
    campaign: Campaign
    components: List[ComponentRunResult] = dataclasses.field(default_factory=list)
    aborted_by_reboot: bool = False
    #: True when the package was (or already stood) quarantined by the
    #: transport circuit breaker; remaining components were skipped.
    quarantined: bool = False

    @property
    def sent(self) -> int:
        return sum(c.sent for c in self.components)

    @property
    def crashes_seen(self) -> int:
        return sum(c.crashes_seen for c in self.components)

    @property
    def rebooted(self) -> bool:
        return any(c.rebooted for c in self.components)

    @property
    def transport_failures(self) -> int:
        return sum(c.transport_failures for c in self.components)

    @property
    def retries(self) -> int:
        return sum(c.retries for c in self.components)

    @property
    def compat_mismatches(self) -> int:
        return sum(c.compat_mismatches for c in self.components)


@dataclasses.dataclass
class FuzzSummary:
    """The summary QGJ Wear ships back to QGJ Mobile over the DataAPI."""

    device: str
    apps: List[AppRunResult] = dataclasses.field(default_factory=list)

    @classmethod
    def merge(cls, summaries: List["FuzzSummary"]) -> "FuzzSummary":
        """Combine per-shard summaries into one study summary.

        Shard results concatenate in the order given (the farm passes shards
        in corpus order, so a merged summary lists apps exactly as a serial
        run would).  Two shards reporting the same ``(package, campaign)``
        segment is a partitioning bug and is rejected, as is merging results
        from different devices or an empty list.
        """
        summaries = list(summaries)
        if not summaries:
            raise ValueError("nothing to merge: no summaries")
        devices = {summary.device for summary in summaries}
        if len(devices) > 1:
            raise ValueError(
                f"cannot merge summaries from different devices: {sorted(devices)}"
            )
        merged = cls(device=summaries[0].device)
        seen = set()
        for summary in summaries:
            for app in summary.apps:
                key = (app.package, app.campaign)
                if key in seen:
                    raise ValueError(
                        f"overlapping shard results: ({app.package}, "
                        f"{app.campaign.value}) reported by more than one shard"
                    )
                seen.add(key)
                merged.apps.append(app)
        return merged

    @property
    def total_sent(self) -> int:
        return sum(app.sent for app in self.apps)

    @property
    def total_security_exceptions(self) -> int:
        return sum(c.security_exceptions for app in self.apps for c in app.components)

    @property
    def total_crashes_seen(self) -> int:
        return sum(app.crashes_seen for app in self.apps)

    @property
    def total_reboots(self) -> int:
        return sum(1 for app in self.apps if app.aborted_by_reboot)

    @property
    def total_transport_failures(self) -> int:
        return sum(app.transport_failures for app in self.apps)

    @property
    def total_retries(self) -> int:
        return sum(app.retries for app in self.apps)

    @property
    def total_compat_mismatches(self) -> int:
        return sum(app.compat_mismatches for app in self.apps)

    @property
    def quarantined_packages(self) -> List[str]:
        return sorted({app.package for app in self.apps if app.quarantined})

    def to_wire(self) -> Dict[str, object]:
        """Flatten for DataAPI transport (plain JSON-able types only)."""
        return {
            "device": self.device,
            "total_sent": self.total_sent,
            "total_security_exceptions": self.total_security_exceptions,
            "total_crashes_seen": self.total_crashes_seen,
            "total_reboots": self.total_reboots,
            "total_transport_failures": self.total_transport_failures,
            "total_retries": self.total_retries,
            "total_compat_mismatches": self.total_compat_mismatches,
            "quarantined_packages": self.quarantined_packages,
            "apps": [
                {
                    "package": app.package,
                    "campaign": app.campaign.value,
                    "sent": app.sent,
                    "crashes_seen": app.crashes_seen,
                    "aborted_by_reboot": app.aborted_by_reboot,
                    "quarantined": app.quarantined,
                }
                for app in self.apps
            ],
        }

    def render(self) -> str:
        """Human-readable summary (what QGJ Mobile shows after a run)."""
        lines = [
            f"QGJ fuzz summary for {self.device}",
            f"  intents sent:        {self.total_sent}",
            f"  security exceptions: {self.total_security_exceptions}",
            f"  crashes observed:    {self.total_crashes_seen}",
            f"  device reboots:      {self.total_reboots}",
            f"  apps fuzzed:         {len({a.package for a in self.apps})}",
        ]
        # Chaos-plane accounting shown only when the environment actually bit.
        if self.total_retries or self.total_transport_failures:
            lines.append(f"  transport retries:   {self.total_retries}")
            lines.append(f"  transport failures:  {self.total_transport_failures}")
        if self.total_compat_mismatches:
            lines.append(f"  compat mismatches:   {self.total_compat_mismatches}")
        if self.quarantined_packages:
            lines.append(
                f"  quarantined apps:    {', '.join(self.quarantined_packages)}"
            )
        return "\n".join(lines)
