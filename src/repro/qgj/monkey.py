"""A UI/Application Exerciser Monkey work-alike.

QGJ-UI is built *on top of* Monkey (the paper's Fig. 1b): Monkey is run on
the target device to generate a stream of UI events with "equal percentages
for different types of events (e.g. touch, trackball, app switch,
permission etc.)"; its log is then parsed to recover the events and the
intents they triggered, which QGJ-UI mutates and replays.

This module generates that stream and writes the same log grammar the real
Monkey writes (``:Sending Touch (ACTION_DOWN): 0:(123.0,240.0)``,
``:Switch: #Intent;…;end``), because QGJ-UI genuinely *parses the log* --
the round trip through text is part of the reproduced pipeline.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Dict, List, Optional, Sequence, Tuple

from repro.android.device import Device

#: Event kinds and the (slot, type) schema of each.  Types drive mutation.
EVENT_SCHEMAS: Dict[str, Tuple[Tuple[str, type], ...]] = {
    "touch": (("x", float), ("y", float)),
    "swipe": (("x1", float), ("y1", float), ("x2", float), ("y2", float)),
    "trackball": (("dx", float), ("dy", float)),
    "keyevent_nav": (("code", int),),
    "keyevent_sys": (("code", int),),
    "text": (("text", str),),
    "appswitch": (("component", str),),
    "permission": (("package", str), ("permission", str)),
}

EVENT_KINDS: Tuple[str, ...] = tuple(EVENT_SCHEMAS)

NAV_KEYCODES = (19, 20, 21, 22, 23, 4)          # dpad + back
SYS_KEYCODES = (3, 4, 26, 82)                    # home, back, power, menu

_TEXT_POOL = (
    "ok", "hello", "watch", "fitness", "reply", "42", "stop", "start",
    "yes", "no", "sync now", "later",
)


@dataclasses.dataclass
class MonkeyEvent:
    """One generated UI event (or monkey-triggered intent)."""

    kind: str
    args: Dict[str, object]

    def schema(self) -> Tuple[Tuple[str, type], ...]:
        return EVENT_SCHEMAS[self.kind]

    def copy(self) -> "MonkeyEvent":
        return MonkeyEvent(kind=self.kind, args=dict(self.args))


class Monkey:
    """Seeded event-stream generator bound to one device."""

    def __init__(
        self,
        device: Device,
        seed: int = 0,
        percentages: Optional[Dict[str, float]] = None,
    ) -> None:
        self._device = device
        self._rng = random.Random(seed)
        if percentages is None:
            # The paper: "we specify equal percentages for different types".
            percentages = {kind: 1.0 for kind in EVENT_KINDS}
        unknown = set(percentages) - set(EVENT_KINDS)
        if unknown:
            raise ValueError(f"unknown event kinds: {sorted(unknown)}")
        self._kinds = sorted(percentages)
        self._weights = [percentages[k] for k in self._kinds]

    # -- generation ----------------------------------------------------------------
    def generate(self, count: int) -> List[MonkeyEvent]:
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        launchers = [
            c.name.flatten_to_short_string()
            for c in self._device.packages.launcher_activities()
        ]
        packages = [p.package for p in self._device.packages.installed_packages()]
        permissions = sorted(self._device.permissions.all_names())
        events: List[MonkeyEvent] = []
        for _ in range(count):
            kind = self._rng.choices(self._kinds, weights=self._weights)[0]
            events.append(self._make(kind, launchers, packages, permissions))
        return events

    def _make(
        self,
        kind: str,
        launchers: Sequence[str],
        packages: Sequence[str],
        permissions: Sequence[str],
    ) -> MonkeyEvent:
        rng = self._rng
        width = getattr(self._device, "screen_width", 1440)
        height = getattr(self._device, "screen_height", 2560)
        if kind == "touch":
            return MonkeyEvent(
                kind, {"x": round(rng.uniform(0, width - 1), 2), "y": round(rng.uniform(0, height - 1), 2)}
            )
        if kind == "swipe":
            return MonkeyEvent(
                kind,
                {
                    "x1": round(rng.uniform(0, width - 1), 2),
                    "y1": round(rng.uniform(0, height - 1), 2),
                    "x2": round(rng.uniform(0, width - 1), 2),
                    "y2": round(rng.uniform(0, height - 1), 2),
                },
            )
        if kind == "trackball":
            return MonkeyEvent(
                kind, {"dx": round(rng.uniform(-5, 5), 2), "dy": round(rng.uniform(-5, 5), 2)}
            )
        if kind == "keyevent_nav":
            return MonkeyEvent(kind, {"code": rng.choice(NAV_KEYCODES)})
        if kind == "keyevent_sys":
            return MonkeyEvent(kind, {"code": rng.choice(SYS_KEYCODES)})
        if kind == "text":
            return MonkeyEvent(kind, {"text": rng.choice(_TEXT_POOL)})
        if kind == "appswitch":
            component = rng.choice(launchers) if launchers else "com.android.shell/.Main"
            return MonkeyEvent(kind, {"component": component})
        if kind == "permission":
            return MonkeyEvent(
                kind,
                {
                    "package": rng.choice(packages) if packages else "com.android.shell",
                    "permission": rng.choice(permissions),
                },
            )
        raise ValueError(f"unknown kind: {kind}")

    # -- log round trip ---------------------------------------------------------------
    def run(self, count: int) -> str:
        """Generate *count* events and return the monkey log text."""
        lines = [f":Monkey: seed={self._rng.random():.6f} count={count}"]
        for event in self.generate(count):
            lines.append(format_event(event))
        lines.append("// Monkey finished")
        return "\n".join(lines)


def format_event(event: MonkeyEvent) -> str:
    """Render one event in the monkey log grammar."""
    a = event.args
    if event.kind == "touch":
        return f":Sending Touch (ACTION_DOWN): 0:({a['x']},{a['y']})"
    if event.kind == "swipe":
        return f":Sending Swipe: ({a['x1']},{a['y1']})->({a['x2']},{a['y2']})"
    if event.kind == "trackball":
        return f":Sending Trackball (ACTION_MOVE): 0:({a['dx']},{a['dy']})"
    if event.kind == "keyevent_nav":
        return f":Sending Key (ACTION_DOWN): {a['code']}    // nav"
    if event.kind == "keyevent_sys":
        return f":Sending Key (ACTION_DOWN): {a['code']}    // sys"
    if event.kind == "text":
        return f':Sending Text: "{a["text"]}"'
    if event.kind == "appswitch":
        return (
            ":Switch: #Intent;action=android.intent.action.MAIN;"
            "category=android.intent.category.LAUNCHER;launchFlags=0x10200000;"
            f"component={a['component']};end"
        )
    if event.kind == "permission":
        return f":Grant Permission: {a['package']} {a['permission']}"
    raise ValueError(f"unknown kind: {event.kind}")


def parse_monkey_log(text: str) -> List[MonkeyEvent]:
    """Recover the event stream from monkey log text.

    Lines that are not event lines (banner, comments, app noise) are
    skipped, exactly like QGJ-UI's log scraper must.
    """
    events: List[MonkeyEvent] = []
    for line in text.splitlines():
        line = line.strip()
        event = _parse_line(line)
        if event is not None:
            events.append(event)
    return events


def _parse_line(line: str) -> Optional[MonkeyEvent]:
    if line.startswith(":Sending Touch"):
        x, y = _parse_pair(line.split(":")[-1])
        return MonkeyEvent("touch", {"x": x, "y": y})
    if line.startswith(":Sending Swipe"):
        _, coords = line.split(": ", 1)
        first, second = coords.split("->")
        x1, y1 = _parse_pair(first)
        x2, y2 = _parse_pair(second)
        return MonkeyEvent("swipe", {"x1": x1, "y1": y1, "x2": x2, "y2": y2})
    if line.startswith(":Sending Trackball"):
        dx, dy = _parse_pair(line.split(":")[-1])
        return MonkeyEvent("trackball", {"dx": dx, "dy": dy})
    if line.startswith(":Sending Key"):
        body = line.split(":", 2)[2]
        code_text, _, comment = body.partition("//")
        kind = "keyevent_sys" if "sys" in comment else "keyevent_nav"
        return MonkeyEvent(kind, {"code": int(code_text.strip())})
    if line.startswith(":Sending Text"):
        text = line.split(": ", 1)[1].strip()
        return MonkeyEvent("text", {"text": text.strip('"')})
    if line.startswith(":Switch:"):
        component = ""
        for part in line.split(";"):
            if part.startswith("component="):
                component = part[len("component="):]
        return MonkeyEvent("appswitch", {"component": component})
    if line.startswith(":Grant Permission:"):
        payload = line.split(":", 2)[2].strip()
        package, _, permission = payload.partition(" ")
        return MonkeyEvent("permission", {"package": package, "permission": permission})
    return None


def _parse_pair(text: str) -> Tuple[float, float]:
    cleaned = text.strip().strip("()")
    left, right = cleaned.split(",", 1)
    return float(left), float(right)
