"""QGJ-Lint: static robustness inspection of app manifests.

Section IV-E's first recommendation is *better tool support*: "features like
exception handling warning, the Analyze Stacktrace tool, and the Lint static
code inspection tool in Android Studio IDE are steps in the right direction.
Integration of Android Studio with dynamic testing tools like QGJ can
further help developers to improve application robustness."

This module is that integration prototype.  It inspects what is statically
visible about an installed package -- its manifest (exported surface,
permission guards, intent filters) and platform-level metadata -- and emits
the warnings a robustness-aware lint would, each mapped to the dynamic
finding from the study that motivates it:

=======================  =====================================================
Check                    Motivating finding
=======================  =====================================================
exported-unguarded       every crash in the study entered through an exported,
                         permission-free component
large-attack-surface     apps with many exported components crashed more
protected-action-filter  filters on protected actions are dead code (only the
                         system may send them) and hint at confused validation
legacy-widget            the GridViewPager ArithmeticException came from an
                         app that never migrated to the AW 2.0 spec
sensor-direct            the SensorService reboot came from an app using
                         SensorManager directly instead of Google Fit
signature-permission     requesting signature-level permissions a third-party
                         app can never hold
=======================  =====================================================

The second half of the integration is :func:`correlate`: given a lint report
and the dynamic study's collector, it measures how well the static warnings
*predict* the observed crashes -- the evidence an IDE integration would show.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Dict, List, Optional, Sequence

from repro.analysis.manifest import StudyCollector
from repro.android.package_manager import AppOrigin, PackageInfo
from repro.android.permissions import PROTECTED_ACTIONS, PermissionManager, ProtectionLevel


class Severity(enum.Enum):
    INFO = "info"
    WARNING = "warning"
    ERROR = "error"

    def __str__(self) -> str:
        return self.value


@dataclasses.dataclass(frozen=True)
class LintFinding:
    """One static finding."""

    check: str
    severity: Severity
    package: str
    component: Optional[str]
    message: str

    def render(self) -> str:
        where = self.component or self.package
        return f"[{self.severity}] {self.check}: {where}: {self.message}"


#: Exported-component count above which the attack surface is flagged.
LARGE_SURFACE_THRESHOLD = 20


def lint_package(
    package: PackageInfo, permissions: Optional[PermissionManager] = None
) -> List[LintFinding]:
    """Run every check against one package."""
    findings: List[LintFinding] = []
    findings.extend(_check_exported_unguarded(package))
    findings.extend(_check_large_surface(package))
    findings.extend(_check_protected_action_filters(package))
    findings.extend(_check_legacy_widget(package))
    findings.extend(_check_sensor_direct(package))
    if permissions is not None:
        findings.extend(_check_signature_permissions(package, permissions))
    return findings


def lint_device(device) -> List[LintFinding]:
    """Lint every installed package on *device*."""
    findings: List[LintFinding] = []
    for package in device.packages.installed_packages():
        findings.extend(lint_package(package, device.permissions))
    return findings


# -- individual checks ---------------------------------------------------------


def _check_exported_unguarded(package: PackageInfo) -> List[LintFinding]:
    findings = []
    for component in package.components:
        if component.exported and component.permission is None and not component.is_launcher():
            findings.append(
                LintFinding(
                    check="exported-unguarded",
                    severity=Severity.WARNING,
                    package=package.package,
                    component=component.name.flatten_to_short_string(),
                    message=(
                        f"{component.kind.value} is exported without a permission guard; "
                        "any app can deliver arbitrary intents to it"
                    ),
                )
            )
    return findings


def _check_large_surface(package: PackageInfo) -> List[LintFinding]:
    exported = sum(1 for c in package.components if c.exported)
    if exported <= LARGE_SURFACE_THRESHOLD:
        return []
    return [
        LintFinding(
            check="large-attack-surface",
            severity=Severity.INFO,
            package=package.package,
            component=None,
            message=f"{exported} exported components; consider reducing the IPC surface",
        )
    ]


def _check_protected_action_filters(package: PackageInfo) -> List[LintFinding]:
    findings = []
    for component in package.components:
        for intent_filter in component.intent_filters:
            bad = sorted(set(intent_filter.actions) & PROTECTED_ACTIONS)
            for action in bad:
                findings.append(
                    LintFinding(
                        check="protected-action-filter",
                        severity=Severity.WARNING,
                        package=package.package,
                        component=component.name.flatten_to_short_string(),
                        message=(
                            f"intent filter matches protected action {action}; only the "
                            "system can send it, so this filter is unreachable"
                        ),
                    )
                )
    return findings


def _check_legacy_widget(package: PackageInfo) -> List[LintFinding]:
    if package.targets_wear2:
        return []
    return [
        LintFinding(
            check="legacy-widget",
            severity=Severity.ERROR,
            package=package.package,
            component=None,
            message=(
                "app has not migrated to the Android Wear 2.0 specification; "
                "deprecated classes such as GridViewPager carry known defects "
                "(divide-by-zero on empty page grids)"
            ),
        )
    ]


def _check_sensor_direct(package: PackageInfo) -> List[LintFinding]:
    if not package.uses_sensor_manager:
        return []
    return [
        LintFinding(
            check="sensor-direct",
            severity=Severity.WARNING,
            package=package.package,
            component=None,
            message=(
                "app talks to SensorManager directly; an unresponsive handler "
                "holding sensor listeners can wedge the core SensorService "
                "(see the study's reboot #1) -- prefer the Google Fit API"
            ),
        )
    ]


def _check_signature_permissions(
    package: PackageInfo, permissions: PermissionManager
) -> List[LintFinding]:
    if package.origin == AppOrigin.BUILT_IN:
        return []
    findings = []
    for name in package.requested_permissions:
        permission = permissions.get(name)
        if permission is None:
            continue
        if permission.level in (ProtectionLevel.SIGNATURE, ProtectionLevel.PRIVILEGED):
            findings.append(
                LintFinding(
                    check="signature-permission",
                    severity=Severity.WARNING,
                    package=package.package,
                    component=None,
                    message=(
                        f"requests {name} ({permission.level.value}); a third-party "
                        "app can never hold it"
                    ),
                )
            )
    return findings


# -- static-vs-dynamic correlation ---------------------------------------------


@dataclasses.dataclass
class LintCorrelation:
    """How well the static warnings predicted the dynamic findings."""

    flagged_components: int
    crashed_components: int
    crashed_and_flagged: int
    recall: float          # crashed components that were flagged
    flag_rate: float       # flagged components / all components


def correlate(findings: Sequence[LintFinding], collector: StudyCollector) -> LintCorrelation:
    """Compare component-level lint flags against observed crash behaviour."""
    flagged = set()
    for finding in findings:
        if finding.component is None:
            continue
        package, _, cls = finding.component.partition("/")
        if cls.startswith("."):
            cls = package + cls
        flagged.add(f"{package}/{cls}")
    # "Crashed" means the component itself died with an uncaught throwable;
    # reboot-implicated bystanders (e.g. a launcher whose *handled* warnings
    # sit in the escalation window) are not validation failures.
    crashed = {
        record.component
        for record in collector.component_records()
        if record.fatal_root_classes
    }
    total = len(collector.component_records())
    both = len(flagged & crashed)
    return LintCorrelation(
        flagged_components=len(flagged),
        crashed_components=len(crashed),
        crashed_and_flagged=both,
        recall=both / len(crashed) if crashed else 1.0,
        flag_rate=len(flagged) / total if total else 0.0,
    )


def render_report(findings: Sequence[LintFinding], limit: int = 20) -> str:
    """Human-readable lint report with a per-check summary."""
    by_check: Dict[str, int] = {}
    for finding in findings:
        by_check[finding.check] = by_check.get(finding.check, 0) + 1
    lines = ["QGJ-LINT REPORT", "-" * 60]
    for check, count in sorted(by_check.items(), key=lambda item: (-item[1], item[0])):
        lines.append(f"  {check:<26} {count:>5} findings")
    lines.append("")
    for finding in list(findings)[:limit]:
        lines.append(finding.render())
    remaining = len(findings) - limit
    if remaining > 0:
        lines.append(f"... and {remaining} more")
    return "\n".join(lines)
